"""Command-line entry point: ``repro-trace``.

Renders JSONL trace files written by the telemetry layer
(``REPRO_TRACE_FILE=trace.jsonl`` or a :class:`~repro.telemetry.Tracer`
with a :class:`~repro.telemetry.JsonlExporter`)::

    repro-trace profile trace.jsonl          # recursion-tree profile
    repro-trace convergence trace.jsonl      # running estimate + CI table
    repro-trace summary trace.jsonl          # one line per run
    repro-trace validate trace.jsonl         # schema check, exit 1 on failure

``summary`` and ``validate`` also accept a ``repro-bench`` /
``repro-serve`` payload (a single JSON object with a ``records`` list):
the summary then prints one line per benchmark record, including the
serving throughput fields of ``serving_*`` records, and validation runs
:func:`repro.telemetry.schema.validate_bench_payload`.  They likewise
accept a ``repro.metrics`` snapshot file (JSONL whose records carry
``"type": "metrics"``, as written by ``repro-serve --metrics-snapshot``
or a :class:`~repro.metrics.SnapshotExporter`): the summary prints one
headline line per snapshot and validation runs
:func:`repro.telemetry.schema.validate_metrics_file`.

A trace file may hold several runs (one ``meta`` line each); ``--run``
selects one by index (default: the last run).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.telemetry.exporters import read_jsonl
from repro.telemetry.render import (
    render_bench_summary,
    render_convergence,
    render_metrics_summary,
    render_profile,
    render_summary,
)
from repro.telemetry.schema import (
    validate_bench_payload,
    validate_metrics_file,
    validate_trace_records,
)
from repro.telemetry.tracer import TraceReport


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render recursion-tree profiles and convergence tables "
        "from repro telemetry trace files (JSON lines).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help_text: str) -> argparse.ArgumentParser:
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("trace_file", help="JSONL trace file to read")
        cmd.add_argument(
            "--run", type=int, default=-1,
            help="run index within the file (default: -1, the last run)",
        )
        return cmd

    add("profile", "per-stratum recursion-tree profile (time/samples/variance)")
    conv = add("convergence", "running estimate + CI per sample block")
    conv.add_argument(
        "--limit", type=int, default=40,
        help="show at most this many evenly-spaced rows (default: 40; 0 = all)",
    )
    add("summary", "one-line overview of each selected run")
    add("validate", "schema-check every run in the file")
    return parser


def _load_bench_payload(path: str) -> Optional[dict]:
    """Return the file's bench payload, or None if it is not one.

    A bench payload is one JSON object carrying a ``records`` list — the
    shape written by ``repro-bench`` and ``repro-serve``.  Trace files are
    JSON *lines* and the first line never has ``records``, so detection
    is unambiguous.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if isinstance(payload, dict) and isinstance(payload.get("records"), list):
        return payload
    return None


def _load_metrics_records(path: str) -> Optional[List[dict]]:
    """Return the file's metrics snapshots, or None if it is not one.

    A metrics file is JSONL whose first record carries ``"type":
    "metrics"`` — the shape written by :class:`~repro.metrics.
    SnapshotExporter` and ``repro-serve --metrics-snapshot``.  Trace files
    open with a ``"type": "meta"`` record, so detection is unambiguous.
    """
    records: List[dict] = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if not (isinstance(record, dict) and record.get("type") == "metrics"):
                    return None
                records.append(record)
    except (OSError, ValueError):
        return None
    return records or None


def _load_run(path: str, run_index: int) -> TraceReport:
    runs = read_jsonl(path)
    if not runs:
        raise ReproError(f"trace file {path!r} contains no runs")
    try:
        records = runs[run_index]
    except IndexError:
        raise ReproError(
            f"trace file {path!r} has {len(runs)} run(s); --run {run_index} "
            "is out of range"
        )
    validate_trace_records(records)
    return TraceReport.from_records(records)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command in ("summary", "validate"):
            payload = _load_bench_payload(args.trace_file)
            if payload is not None:
                n = validate_bench_payload(payload)
                if args.command == "validate":
                    print(f"ok: bench payload with {n} records")
                else:
                    print(render_bench_summary(payload))
                return 0
            snapshots = _load_metrics_records(args.trace_file)
            if snapshots is not None:
                n = validate_metrics_file(args.trace_file)
                if args.command == "validate":
                    print(f"ok: metrics file with {n} snapshots")
                else:
                    print(render_metrics_summary(snapshots))
                return 0
        if args.command == "validate":
            runs = read_jsonl(args.trace_file)
            if not runs:
                raise ReproError(f"trace file {args.trace_file!r} contains no runs")
            for run in runs:
                counts = validate_trace_records(run)
                print(
                    f"ok: run with {counts.get('span', 0)} spans, "
                    f"{counts.get('conv', 0)} convergence events"
                )
            return 0
        report = _load_run(args.trace_file, args.run)
        if args.command == "profile":
            print(render_profile(report))
        elif args.command == "convergence":
            limit = args.limit if args.limit > 0 else None
            print(render_convergence(report, limit=limit))
        elif args.command == "summary":
            print(render_summary(report))
    except (ReproError, OSError) as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
