"""Schema validation for trace files and benchmark artefacts.

Both machine-readable artefacts the repo produces — ``repro-trace`` JSONL
trace files and the ``BENCH_traversal.json`` payload of ``repro-bench`` —
are validated through the same field-presence helper, so the CI schema test
exercises one code path for both formats.

A trace run must open with a ``meta`` record carrying the schema version,
the host ``cpu_count`` and the seed; every span record needs a path and the
sampling bookkeeping fields; convergence records need the running estimate
triple.  Validation raises :class:`repro.errors.ReproError` with the
offending record's index so a truncated or hand-edited file fails loudly.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Sequence

from repro.errors import ReproError
from repro.telemetry.tracer import TRACE_SCHEMA_VERSION

#: Required fields of a trace ``meta`` record.
META_FIELDS = (
    "schema",
    "generated_by",
    "estimator",
    "n_samples",
    "n_worlds",
    "seed",
    "cpu_count",
    "n_workers",
    "value",
)

#: Required fields of a trace ``span`` record.
SPAN_FIELDS = ("path", "kind", "n_samples", "worlds", "seconds")

#: Required fields of a trace ``conv`` (convergence) record.  Since trace
#: schema v2 the running ``mean`` is the ratio estimand ``num/den`` with a
#: delta-method CI: ``ci95`` stays the 95% half-width, ``half_width`` is at
#: the run's confidence level (``meta["confidence"]``).
CONV_FIELDS = ("worlds", "mean", "ci95", "half_width", "den")

#: Required fields of a trace ``parallel`` record.
PARALLEL_FIELDS = ("n_workers", "n_jobs", "pool_seconds", "utilisation", "jobs")

#: Extra required fields of ``serving_*`` bench records (the 1-vs-N
#: concurrent-query protocol of ``repro-serve`` / ``repro-bench --serving``,
#: including the stratified RSS-I/RCSS sweep).  ``cache_bytes_peak`` is the
#: world-block cache's high-water mark during the pass — ``0`` for the
#: sequential baselines, which never touch the cache.
SERVING_BENCH_FIELDS = (
    "queries_per_sec",
    "cache_hit_rate",
    "batch_size_mean",
    "n_queries",
    "cache_bytes_peak",
)

#: Extra required fields of the ``_engine_`` serving records on top of
#: :data:`SERVING_BENCH_FIELDS`: per-query end-to-end latency quantiles in
#: milliseconds, read off the engine's ``repro_serving_query_latency_seconds``
#: histogram during the warm passes.  Sequential baselines have no engine
#: latency distribution, so they are exempt.
SERVING_LATENCY_FIELDS = (
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
)

#: Extra required fields of ``adaptive_*`` bench records (the
#: worlds-to-target-CI protocol of ``repro-bench --adaptive``).
ADAPTIVE_BENCH_FIELDS = (
    "worlds_to_target",
    "target_ci",
    "pilot_fraction",
)

#: Required fields of a ``repro.metrics`` JSONL snapshot record.
METRICS_RECORD_FIELDS = ("type", "schema", "ts", "metrics")

#: Required fields of each metric-family entry inside a snapshot record.
METRICS_FAMILY_FIELDS = ("kind", "help", "labels", "samples")


def check_fields(
    record: Mapping[str, Any], required: Sequence[str], where: str
) -> None:
    """Raise unless every ``required`` field is present in ``record``."""
    missing = [field for field in required if field not in record]
    if missing:
        raise ReproError(f"{where}: missing fields {missing} in {dict(record)!r}")


def validate_trace_records(records: Sequence[Mapping[str, Any]]) -> Dict[str, int]:
    """Validate one run's trace records; return per-type counts."""
    if not records:
        raise ReproError("trace run is empty")
    first = records[0]
    if first.get("type") != "meta":
        raise ReproError("trace run must start with a meta record")
    check_fields(first, META_FIELDS, "trace meta")
    if first["schema"] != TRACE_SCHEMA_VERSION:
        raise ReproError(
            f"trace schema version {first['schema']!r} unsupported "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    counts: Dict[str, int] = {}
    for i, record in enumerate(records):
        kind = record.get("type")
        if kind == "meta":
            if i != 0:
                raise ReproError("trace run contains a second meta record")
        elif kind == "span":
            check_fields(record, SPAN_FIELDS, f"trace span #{i}")
            if not isinstance(record["path"], list):
                raise ReproError(f"trace span #{i}: path must be a list")
        elif kind == "conv":
            check_fields(record, CONV_FIELDS, f"trace conv #{i}")
        elif kind == "parallel":
            check_fields(record, PARALLEL_FIELDS, f"trace parallel #{i}")
        else:
            raise ReproError(f"trace record #{i} has unknown type {kind!r}")
        counts[kind] = counts.get(kind, 0) + 1
    if counts.get("span", 0) < 1:
        raise ReproError("trace run has no span records")
    return counts


def validate_trace_file(path: str) -> int:
    """Validate every run of a trace file; return the number of runs."""
    from repro.telemetry.exporters import read_jsonl

    runs = read_jsonl(path)
    if not runs:
        raise ReproError(f"trace file {path!r} contains no runs")
    for run in runs:
        validate_trace_records(run)
    return len(runs)


def validate_bench_payload(payload: Mapping[str, Any]) -> int:
    """Validate a ``repro-bench`` payload; return the record count.

    Shares :func:`check_fields` with the trace validation — the benchmark
    harness is imported lazily to keep the telemetry hot path free of it.
    """
    from repro.bench.harness import BENCH_FIELDS

    check_fields(payload, ("version", "generated_by", "config", "records"), "bench payload")
    check_fields(
        payload["config"], ("graph", "n_worlds", "seed", "cpu_count"), "bench config"
    )
    records = payload["records"]
    if not records:
        raise ReproError("bench payload has no records")
    for i, record in enumerate(records):
        check_fields(record, BENCH_FIELDS, f"bench record #{i}")
        kernel = str(record.get("kernel", ""))
        if kernel.startswith("serving_"):
            check_fields(record, SERVING_BENCH_FIELDS, f"serving bench record #{i}")
            if "_engine_" in kernel:
                check_fields(
                    record, SERVING_LATENCY_FIELDS,
                    f"serving engine bench record #{i}",
                )
        if kernel.startswith("adaptive_"):
            check_fields(record, ADAPTIVE_BENCH_FIELDS, f"adaptive bench record #{i}")
    return len(records)


def validate_metrics_record(record: Mapping[str, Any], where: str = "metrics record") -> int:
    """Validate one ``repro.metrics`` snapshot record; return the family count.

    Checks the envelope (``type``/``schema``/``ts``/``metrics``), then every
    family entry: kind is one of counter/gauge/histogram, samples are lists,
    each sample's ``labels`` length matches the family's declared label
    names, and histogram ``counts`` have exactly ``len(buckets) + 1``
    entries (the ``+Inf`` bucket is last).
    """
    from repro.metrics.registry import METRICS_SCHEMA_VERSION

    check_fields(record, METRICS_RECORD_FIELDS, where)
    if record["type"] != "metrics":
        raise ReproError(f"{where}: type must be 'metrics', got {record['type']!r}")
    if record["schema"] != METRICS_SCHEMA_VERSION:
        raise ReproError(
            f"{where}: metrics schema version {record['schema']!r} unsupported "
            f"(expected {METRICS_SCHEMA_VERSION})"
        )
    families = record["metrics"]
    if not isinstance(families, Mapping):
        raise ReproError(f"{where}: 'metrics' must be an object")
    for name, entry in families.items():
        ctx = f"{where}: family {name!r}"
        check_fields(entry, METRICS_FAMILY_FIELDS, ctx)
        kind = entry["kind"]
        if kind not in ("counter", "gauge", "histogram"):
            raise ReproError(f"{ctx}: unknown kind {kind!r}")
        if not isinstance(entry["samples"], list):
            raise ReproError(f"{ctx}: samples must be a list")
        n_labels = len(entry["labels"])
        if kind == "histogram":
            check_fields(entry, ("buckets",), ctx)
            n_counts = len(entry["buckets"]) + 1
        for j, sample in enumerate(entry["samples"]):
            sctx = f"{ctx} sample #{j}"
            if len(sample.get("labels", ())) != n_labels:
                raise ReproError(
                    f"{sctx}: expected {n_labels} label values, "
                    f"got {sample.get('labels')!r}"
                )
            if kind == "histogram":
                check_fields(sample, ("counts", "sum", "count"), sctx)
                if len(sample["counts"]) != n_counts:
                    raise ReproError(
                        f"{sctx}: counts must have {n_counts} entries "
                        f"(buckets + the +Inf bucket), got {len(sample['counts'])}"
                    )
            else:
                check_fields(sample, ("value",), sctx)
    return len(families)


def validate_metrics_file(path: str) -> int:
    """Validate every snapshot of a metrics JSONL file; return their count."""
    import json

    count = 0
    with open(path) as handle:
        for i, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ReproError(f"metrics file {path!r} line {i + 1}: {exc}")
            validate_metrics_record(record, f"metrics record #{count}")
            count += 1
    if count == 0:
        raise ReproError(f"metrics file {path!r} contains no snapshots")
    return count


__all__ = [
    "META_FIELDS",
    "SPAN_FIELDS",
    "CONV_FIELDS",
    "PARALLEL_FIELDS",
    "SERVING_BENCH_FIELDS",
    "SERVING_LATENCY_FIELDS",
    "ADAPTIVE_BENCH_FIELDS",
    "METRICS_RECORD_FIELDS",
    "METRICS_FAMILY_FIELDS",
    "check_fields",
    "validate_trace_records",
    "validate_trace_file",
    "validate_bench_payload",
    "validate_metrics_record",
    "validate_metrics_file",
]
