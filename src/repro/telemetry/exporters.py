"""Pluggable trace exporters.

An exporter is anything with an ``export(report)`` method; a
:class:`~repro.telemetry.tracer.Tracer` runs every attached exporter when
the estimate finishes.  Three are shipped:

* :class:`InMemoryExporter` — collects reports in a list (tests, notebooks);
* :class:`JsonlExporter` — appends one run's records as JSON lines to a
  file, the format ``repro-trace`` renders (multiple runs per file are
  split on their ``meta`` lines);
* :class:`ConsoleTreeExporter` — prints the human-readable recursion-tree
  profile to a stream as soon as the run finishes.
"""

from __future__ import annotations

import json
import sys
from typing import Any, List, Optional, TextIO

from repro.telemetry.tracer import TraceReport


class InMemoryExporter:
    """Collects finished :class:`TraceReport` objects in ``self.reports``."""

    def __init__(self) -> None:
        self.reports: List[TraceReport] = []

    def export(self, report: TraceReport) -> None:
        self.reports.append(report)

    @property
    def last(self) -> Optional[TraceReport]:
        return self.reports[-1] if self.reports else None


class JsonlExporter:
    """Appends each report's records to ``path`` as JSON lines."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def export(self, report: TraceReport) -> None:
        with open(self.path, "a") as handle:
            for record in report.to_records():
                handle.write(json.dumps(record) + "\n")


class ConsoleTreeExporter:
    """Prints the recursion-tree profile to ``stream`` (default stderr)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def export(self, report: TraceReport) -> None:
        from repro.telemetry.render import render_profile

        self.stream.write(render_profile(report) + "\n")


def read_jsonl(path: str) -> List[List[dict]]:
    """Read a trace file into runs: lists of records split on meta lines."""
    runs: List[List[dict]] = []
    current: List[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record: Any = json.loads(line)
            if record.get("type") == "meta" and current:
                runs.append(current)
                current = []
            current.append(record)
    if current:
        runs.append(current)
    return runs


__all__ = ["InMemoryExporter", "JsonlExporter", "ConsoleTreeExporter", "read_jsonl"]
