"""The tracing context, report, and module-level instrumentation hooks.

Mirrors the audit layer (:mod:`repro.audit`) exactly in its activation
pattern: one module-global :func:`active` check per recursion node when
tracing is off, an installed :class:`TraceContext` when it is on.  Tracing
is enabled by

* the environment variable ``REPRO_TRACE=1`` (checked once per
  :meth:`~repro.core.base.Estimator.estimate` call),
* ``estimate(..., trace=True)``, or
* passing a :class:`Tracer` instance explicitly (``trace=Tracer(...)``),
  optionally carrying exporters that receive the finished report.

When ``REPRO_TRACE_FILE`` names a path, every env-enabled trace is appended
to it as JSON lines (one run = one ``meta`` line followed by its spans,
convergence events and parallel metrics) for ``repro-trace`` to render.

Stratum paths are derived from the path-keyed RNG when the recursion runs
under the parallel engine (:class:`repro.rng.StratumRng`) and from an
enter/exit stack maintained by the instrumented recursion loops otherwise,
so sequential and parallel runs of the same estimate produce the same tree.
"""

from __future__ import annotations

import os
import platform
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.variance import DEFAULT_CONFIDENCE, ratio_variance, z_score
from repro.errors import ReproError
from repro.telemetry.spans import Ledger, Span, RESIDUAL_INDEX, resolve_weights, sort_key

#: Environment variable enabling tracing for every estimate in the process.
TRACE_ENV = "REPRO_TRACE"

#: Environment variable naming a JSONL file env-enabled traces append to.
TRACE_FILE_ENV = "REPRO_TRACE_FILE"

#: Version of the trace-file schema (the ``schema`` field of ``meta`` lines).
#: v2: convergence events track the ratio estimand (``mean = num/den`` with a
#: delta-method CI) instead of the numerator alone, and carry a
#: ``half_width`` at the run's confidence level next to the 95% ``ci95``.
TRACE_SCHEMA_VERSION = 2

#: Convergence events kept per run; later blocks are counted, not stored.
MAX_EVENTS = 4096

#: The 95% z-score, kept for the schema-stable ``ci95`` event field.
_Z95 = z_score(0.95)

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"", "0", "false", "no", "off"})


def env_enabled() -> bool:
    """Whether ``REPRO_TRACE`` requests tracing (re-read on every call)."""
    raw = os.environ.get(TRACE_ENV, "").strip().lower()
    if raw in _FALSY:
        return False
    if raw in _TRUTHY:
        return True
    raise ReproError(
        f"cannot parse {TRACE_ENV}={raw!r}; use 1/true/yes/on or 0/false/no/off"
    )


class TraceReport:
    """The finished trace of one estimate: spans, events, parallel metrics.

    Attached to :attr:`repro.core.result.EstimateResult.trace` and written
    to trace files via :meth:`to_records`.  The variance-decomposition
    helpers reconstruct the paper's stratified variance from the ledger:
    :meth:`estimated_variance` is ``sum w^2 sigma_hat^2 / n`` over sampling
    leaves, the quantity Theorems 3.2/4.3/5.5 order across estimators.
    """

    __slots__ = ("estimator", "meta", "spans", "events", "parallel")

    def __init__(
        self,
        estimator: str,
        meta: Dict[str, Any],
        spans: Dict[Tuple[int, ...], Span],
        events: List[Dict[str, Any]],
        parallel: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.estimator = estimator
        self.meta = meta
        self.spans = spans
        self.events = events
        self.parallel = parallel

    @property
    def n_spans(self) -> int:
        return len(self.spans)

    def sorted_spans(self) -> List[Span]:
        return [self.spans[p] for p in sorted(self.spans, key=sort_key)]

    def leaf_spans(self) -> List[Span]:
        return [s for s in self.sorted_spans() if s.ledger is not None]

    def estimated_variance(self) -> float:
        """Estimated variance of the numerator estimate (ledger-based)."""
        return sum(s.variance_contribution() for s in self.leaf_spans())

    def estimated_variance_den(self) -> float:
        """Estimated variance of the denominator estimate (zero when flat)."""
        return sum(s.variance_contribution_den() for s in self.leaf_spans())

    def estimated_covariance(self) -> float:
        """Estimated covariance of the ``(num, den)`` estimate pair."""
        return sum(s.covariance_contribution() for s in self.leaf_spans())

    def estimated_ratio_variance(self) -> float:
        """Delta-method variance of the reported ``num/den`` estimate.

        For unconditional queries (``den == 1``) the denominator variance
        and covariance vanish and this equals :meth:`estimated_variance`.
        ``inf`` when the recorded denominator is zero.
        """
        numerator = float(self.meta.get("numerator", 0.0))
        denominator = float(self.meta.get("denominator", 0.0))
        return ratio_variance(
            numerator,
            denominator,
            self.estimated_variance(),
            self.estimated_variance_den(),
            self.estimated_covariance(),
            1,
        )

    def ci_half_width(self, confidence: float = DEFAULT_CONFIDENCE) -> float:
        """Half-width of the estimate's CI at ``confidence`` (delta method)."""
        return z_score(confidence) * self.estimated_ratio_variance() ** 0.5

    def variance_shares(self) -> Dict[Tuple[int, ...], float]:
        """Each leaf's fraction of :meth:`estimated_variance` (0 when flat)."""
        total = self.estimated_variance()
        if total <= 0.0:
            return {s.path: 0.0 for s in self.leaf_spans()}
        return {s.path: s.variance_contribution() / total for s in self.leaf_spans()}

    def total_seconds(self) -> float:
        root = self.spans.get(())
        if root is not None and root.wall_seconds() > 0:
            return root.wall_seconds()
        return sum(s.wall_seconds() for s in self.spans.values() if len(s.path) <= 1)

    def to_records(self) -> List[Dict[str, Any]]:
        """The run as trace-file records: meta, spans, events, parallel."""
        records: List[Dict[str, Any]] = [dict(self.meta, type="meta")]
        for span in self.sorted_spans():
            records.append(dict(span.to_dict(), type="span"))
        for event in self.events:
            records.append(dict(event, type="conv"))
        if self.parallel is not None:
            records.append(dict(self.parallel, type="parallel"))
        return records

    @classmethod
    def from_records(cls, records: Sequence[Dict[str, Any]]) -> "TraceReport":
        """Rebuild a report from trace-file records (one run's worth)."""
        meta: Dict[str, Any] = {}
        spans: Dict[Tuple[int, ...], Span] = {}
        events: List[Dict[str, Any]] = []
        parallel: Optional[Dict[str, Any]] = None
        for record in records:
            kind = record.get("type")
            body = {k: v for k, v in record.items() if k != "type"}
            if kind == "meta":
                meta = body
            elif kind == "span":
                span = Span.from_dict(body)
                spans[span.path] = span
            elif kind == "conv":
                events.append(body)
            elif kind == "parallel":
                parallel = body
        resolve_weights(spans)
        return cls(meta.get("estimator", "estimator"), meta, spans, events, parallel)

    def __repr__(self) -> str:  # noqa: D105
        return (
            f"TraceReport(estimator={self.estimator!r}, spans={self.n_spans}, "
            f"events={len(self.events)})"
        )


class TraceContext:
    """The live tracing state of one estimate (public alias: ``Tracer``).

    One context is created per :meth:`Estimator.estimate` call, plus one per
    job inside each pool worker; worker contexts are serialised
    (:meth:`worker_payload`) and merged back into the driver's context
    (:meth:`absorb_worker`) alongside the job's result, piggybacking on the
    existing payload channel of the parallel engine.
    """

    def __init__(
        self,
        estimator: str = "estimator",
        base_path: Tuple[int, ...] = (),
        exporters: Optional[Sequence[Any]] = None,
        confidence: float = DEFAULT_CONFIDENCE,
    ) -> None:
        self.estimator = estimator
        self.confidence = float(confidence)
        self._z = z_score(confidence)
        self.base_path = tuple(int(i) for i in base_path)
        self._stack: List[int] = list(self.base_path)
        self._frames: List[Tuple[float, float]] = []
        self.spans: Dict[Tuple[int, ...], Span] = {}
        self.events: List[Dict[str, Any]] = []
        self.events_dropped = 0
        self.worker_jobs: List[Dict[str, Any]] = []
        self.parallel: Optional[Dict[str, Any]] = None
        self.exporters: List[Any] = list(exporters or [])
        self.auto_file: Optional[str] = None
        self.report: Optional[TraceReport] = None
        self._started = time.perf_counter()
        # running whole-run convergence accumulators (world-level stream)
        self._cum_n = 0
        self._cum_num = 0.0
        self._cum_sq = 0.0
        self._cum_den = 0.0
        self._cum_den_sq = 0.0
        self._cum_cross = 0.0

    # ------------------------------------------------------------------ #
    # span tree
    # ------------------------------------------------------------------ #

    def current_path(self, rng: Any = None) -> Tuple[int, ...]:
        """The node path: from the path-keyed RNG, else the enter/exit stack."""
        path = getattr(rng, "path", None)
        if path is not None:
            return tuple(path)
        return tuple(self._stack)

    def _span(self, path: Tuple[int, ...]) -> Span:
        span = self.spans.get(path)
        if span is None:
            span = Span(path)
            self.spans[path] = span
        return span

    def record_split(
        self,
        rng: Any,
        *,
        pis,
        pi0: float = 0.0,
        allocations=None,
        n_samples: int = 0,
    ) -> None:
        """Record one recursion node's stratification on its span."""
        path = self.current_path(rng)
        # Re-anchor the enter/exit stack at this node's absolute path.  A
        # path-keyed RNG carries the truth; the stack may be stale when
        # several jobs share one context (the inline single-worker engine
        # path), and a mismatch would make exit_child write its ``pi`` onto
        # the wrong absolute span.  With a plain Generator ``current_path``
        # already returned the stack, so this is a no-op for sequential runs.
        self._stack = list(path)
        span = self._span(path)
        span.kind = "split"
        span.pi0 = float(pi0)
        span.n_strata = len(pis)
        span.n_samples = int(n_samples)
        span.pis = tuple(float(p) for p in pis)
        if allocations is not None:
            span.allocations = tuple(int(a) for a in allocations)

    def enter_child(self, index: int, pi: float) -> None:
        self._stack.append(int(index))
        self._frames.append((time.perf_counter(), float(pi)))

    def exit_child(self) -> None:
        t0, pi = self._frames.pop()
        span = self._span(tuple(self._stack))
        self._stack.pop()
        span.pi = pi
        span.seconds += time.perf_counter() - t0

    # ------------------------------------------------------------------ #
    # leaves, ledger and convergence
    # ------------------------------------------------------------------ #

    def leaf_block(self, path: Tuple[int, ...], nums, dens) -> None:
        """Fold one evaluated world block into the leaf's ledger + events.

        Events track the *ratio* estimand ``sum(num) / sum(den)`` — the
        quantity the estimate actually reports (Eq. 22 for conditional
        queries; for unconditional ones ``den == 1`` and this reduces to
        the numerator mean) — with a delta-method CI.  ``ci95`` is always
        the 95% half-width; ``half_width`` is at the run's confidence.
        """
        self._span(path).ensure_ledger().add_arrays(nums, dens)
        self._cum_n += int(nums.size)
        self._cum_num += float(nums.sum())
        self._cum_sq += float((nums * nums).sum())
        self._cum_den += float(dens.sum())
        self._cum_den_sq += float((dens * dens).sum())
        self._cum_cross += float((nums * dens).sum())
        if len(self.events) >= MAX_EVENTS:
            self.events_dropped += 1
            return
        n = self._cum_n
        mean_num = self._cum_num / n
        mean_den = self._cum_den / n
        var_num = max(0.0, self._cum_sq / n - mean_num * mean_num)
        var_den = max(0.0, self._cum_den_sq / n - mean_den * mean_den)
        cov = self._cum_cross / n - mean_num * mean_den
        variance = ratio_variance(mean_num, mean_den, var_num, var_den, cov, n)
        se = variance**0.5
        self.events.append(
            {
                "worlds": n,
                "mean": mean_num / mean_den if mean_den else float("nan"),
                "ci95": _Z95 * se,
                "half_width": self._z * se,
                "den": mean_den,
            }
        )

    def leaf_done(
        self,
        path: Tuple[int, ...],
        n_samples: int,
        worlds: int,
        seconds: float,
        *,
        kind: str = "leaf",
        pi: Optional[float] = None,
    ) -> None:
        """Finalise a sampling leaf's span after its blocks were recorded."""
        span = self._span(path)
        if span.kind is None or span.kind == "leaf":
            span.kind = kind
        span.n_samples += int(n_samples)
        span.worlds += int(worlds)
        span.self_seconds += float(seconds)
        if pi is not None:
            span.pi = float(pi)

    def record_leaf_arrays(
        self,
        rng: Any,
        nums,
        dens,
        n_samples: int,
        seconds: float,
        *,
        index: Optional[int] = None,
        pi: Optional[float] = None,
        kind: str = "leaf",
    ) -> None:
        """One-shot leaf recorded from already-evaluated pair arrays.

        Used by the estimators that batch-evaluate all their worlds at once
        (FS's complement stratum, ANMC's mirrored block) instead of going
        through :func:`repro.core.base.sample_mean_pair`.
        """
        path = self.current_path(rng)
        if index is not None:
            path = path + (int(index),)
        self.leaf_block(path, nums, dens)
        self.leaf_done(path, n_samples, int(nums.size), seconds, kind=kind, pi=pi)

    # ------------------------------------------------------------------ #
    # parallel engine plumbing
    # ------------------------------------------------------------------ #

    def record_job(self, path: Sequence[int], seconds: float, pid: int) -> None:
        """Record one evaluated job's wall-clock (driver- or worker-side)."""
        self.worker_jobs.append(
            {"path": [int(i) for i in path], "seconds": float(seconds), "pid": int(pid)}
        )

    def record_parallel(
        self,
        n_workers: int,
        n_jobs: int,
        pool_seconds: float,
        completion_offsets: Optional[Sequence[float]] = None,
    ) -> None:
        """Summarise the pool run: utilisation, queue depth, chunk timings."""
        busy = sum(job["seconds"] for job in self.worker_jobs)
        utilisation = None
        if pool_seconds > 0.0 and n_workers > 0:
            utilisation = busy / (pool_seconds * n_workers)
        self.parallel = {
            "n_workers": int(n_workers),
            "n_jobs": int(n_jobs),
            "pool_seconds": float(pool_seconds),
            "busy_seconds": busy,
            "utilisation": utilisation,
            "max_pending": int(n_jobs),
            "completion_offsets": [
                float(t) for t in (completion_offsets or [])
            ],
            "jobs": list(self.worker_jobs),
        }

    def worker_payload(self, job_seconds: float, path: Sequence[int]) -> dict:
        """Picklable trace a pool worker ships back with its job result."""
        return {
            "spans": [span.to_dict() for span in self.spans.values()],
            "events": list(self.events),
            "events_dropped": self.events_dropped,
            "job": {
                "path": [int(i) for i in path],
                "seconds": float(job_seconds),
                "pid": os.getpid(),
            },
        }

    def absorb_worker(self, payload: Dict[str, Any]) -> None:
        """Merge a worker context's payload into the driver context."""
        for data in payload["spans"]:
            incoming = Span.from_dict(data)
            existing = self.spans.get(incoming.path)
            if existing is None:
                self.spans[incoming.path] = incoming
            else:
                existing.merge(incoming)
        job = payload["job"]
        for event in payload["events"]:
            if len(self.events) >= MAX_EVENTS:
                self.events_dropped += 1
                continue
            self.events.append(dict(event, job=list(job["path"])))
        self.events_dropped += int(payload.get("events_dropped", 0))
        self.worker_jobs.append(dict(job))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def finish(
        self,
        *,
        numerator: float,
        denominator: float,
        n_samples: int,
        n_worlds: int,
        seed: Optional[int] = None,
        n_workers: int = 0,
    ) -> TraceReport:
        """Seal the trace: weights, root timing, metadata, exporters."""
        root = self._span(())
        if root.seconds <= 0.0:
            root.seconds = time.perf_counter() - self._started
        resolve_weights(self.spans)
        value = numerator / denominator if denominator else float("nan")
        meta = {
            "schema": TRACE_SCHEMA_VERSION,
            "generated_by": "repro-trace",
            "estimator": self.estimator,
            "n_samples": int(n_samples),
            "n_worlds": int(n_worlds),
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "n_workers": int(n_workers),
            "value": value,
            "numerator": float(numerator),
            "denominator": float(denominator),
            "confidence": self.confidence,
            "python": platform.python_version(),
            "events_dropped": self.events_dropped,
        }
        self.report = TraceReport(
            self.estimator, meta, self.spans, self.events, self.parallel
        )
        for exporter in self.exporters:
            exporter.export(self.report)
        if self.auto_file:
            from repro.telemetry.exporters import JsonlExporter

            JsonlExporter(self.auto_file).export(self.report)
        return self.report


#: Public name for an explicitly-constructed tracing context.
Tracer = TraceContext


# ---------------------------------------------------------------------- #
# module-level active context (the audit-layer pattern)
# ---------------------------------------------------------------------- #

_ACTIVE: Optional[TraceContext] = None

# Sentinel distinguishing "no thread-local override" from "overridden with
# None" (see repro.audit — the pattern is shared).
_UNSET = object()


class _LocalSlot(threading.local):
    ctx: Any = _UNSET


_LOCAL = _LocalSlot()


def active() -> Optional[TraceContext]:
    """The active trace context, or ``None`` — the hot-path guard.

    A thread-local override (:func:`activate_local`) shadows the
    process-wide context, giving each thread-pool worker its own per-job
    context while the driver thread keeps the run-level one.
    """
    local = _LOCAL.ctx
    if local is not _UNSET:
        return local
    return _ACTIVE


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Install ``ctx`` for the duration of a ``with``; ``None`` is a no-op."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ctx
    try:
        yield ctx
    finally:
        _ACTIVE = previous


@contextmanager
def activate_local(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Install ``ctx`` for the current thread only (thread-pool workers).

    Shadows the process-wide context even when ``ctx`` is ``None``, so an
    untraced worker job never records spans into the driver's context.
    """
    previous = _LOCAL.ctx
    _LOCAL.ctx = ctx
    try:
        yield ctx
    finally:
        _LOCAL.ctx = previous


def resolve_tracer(trace: Any, estimator: str = "estimator") -> Optional[TraceContext]:
    """Resolve an ``estimate(..., trace=...)`` argument to a context.

    ``None`` honours ``REPRO_TRACE``; booleans force tracing on or off; a
    :class:`Tracer` instance is adopted as-is (its estimator name is filled
    in when left at the default).  Env-resolved tracers auto-export to
    ``REPRO_TRACE_FILE`` when that variable names a path.
    """
    if isinstance(trace, TraceContext):
        if trace.estimator == "estimator":
            trace.estimator = estimator
        return trace
    enabled = env_enabled() if trace is None else bool(trace)
    if not enabled:
        return None
    ctx = TraceContext(estimator)
    target = os.environ.get(TRACE_FILE_ENV, "").strip()
    if target:
        ctx.auto_file = target
    return ctx


# ---------------------------------------------------------------------- #
# instrumentation hooks used by the estimators
# ---------------------------------------------------------------------- #

def split(
    counter: Any,
    rng: Any,
    *,
    pis,
    pi0: float = 0.0,
    allocations=None,
    n_samples: int = 0,
) -> Optional[TraceContext]:
    """Record one recursion node's stratification; returns the context.

    Always updates the result diagnostics on ``counter`` (split/stratum
    counts, analytic mass — pass ``None`` for engine-internal budget chunks
    that are not statistical strata); records a span only when tracing is
    active.  The returned context (or ``None``) lets the caller guard its
    enter/exit calls without re-reading the module global.
    """
    if counter is not None:
        counter.record_split(len(pis), float(pi0))
    ctx = active()
    if ctx is not None:
        ctx.record_split(
            rng, pis=pis, pi0=pi0, allocations=allocations, n_samples=n_samples
        )
    return ctx


def enter_child(
    counter: Any, ctx: Optional[TraceContext], index: int, pi: float
) -> None:
    """Descend into child stratum ``index`` (depth/weight + span stack)."""
    if counter is not None:
        counter.enter_child(float(pi))
    if ctx is not None:
        ctx.enter_child(index, pi)


def exit_child(counter: Any, ctx: Optional[TraceContext]) -> None:
    """Ascend out of the current child stratum."""
    if counter is not None:
        counter.exit_child()
    if ctx is not None:
        ctx.exit_child()


__all__ = [
    "TRACE_ENV",
    "TRACE_FILE_ENV",
    "TRACE_SCHEMA_VERSION",
    "MAX_EVENTS",
    "RESIDUAL_INDEX",
    "TraceContext",
    "Tracer",
    "TraceReport",
    "env_enabled",
    "active",
    "activate",
    "activate_local",
    "resolve_tracer",
    "split",
    "enter_child",
    "exit_child",
]
