"""repro.telemetry — opt-in tracing, variance ledger and convergence metrics.

The observability layer for every estimator: a span per recursion node
(stratum path, ``pi_i``, allocated ``N_i``, worlds materialised, wall-clock,
per-stratum ``(num, den)`` moment ledger), whole-run convergence traces
(running estimate + CI every sample block), and parallel-engine metrics
(per-worker spans merged in the driver, pool utilisation, chunk timings).

Enable with ``REPRO_TRACE=1``, ``estimate(..., trace=True)``, or an explicit
:class:`Tracer`; render trace files with the ``repro-trace`` CLI.  Tracing
off costs one module-global check per recursion node — the same bar the
audit layer (:mod:`repro.audit`) meets.

The render, schema and CLI modules are imported lazily (not at package
import) so the estimator hot path pulls in nothing beyond the tracer.
"""

from repro.telemetry.spans import Ledger, Span, RESIDUAL_INDEX, resolve_weights
from repro.telemetry.tracer import (
    MAX_EVENTS,
    TRACE_ENV,
    TRACE_FILE_ENV,
    TRACE_SCHEMA_VERSION,
    TraceContext,
    TraceReport,
    Tracer,
    activate,
    activate_local,
    active,
    enter_child,
    env_enabled,
    exit_child,
    resolve_tracer,
    split,
)
from repro.telemetry.exporters import (
    ConsoleTreeExporter,
    InMemoryExporter,
    JsonlExporter,
    read_jsonl,
)

__all__ = [
    "TRACE_ENV",
    "TRACE_FILE_ENV",
    "TRACE_SCHEMA_VERSION",
    "MAX_EVENTS",
    "RESIDUAL_INDEX",
    "Ledger",
    "Span",
    "TraceContext",
    "Tracer",
    "TraceReport",
    "env_enabled",
    "active",
    "activate",
    "activate_local",
    "resolve_tracer",
    "resolve_weights",
    "split",
    "enter_child",
    "exit_child",
    "InMemoryExporter",
    "JsonlExporter",
    "ConsoleTreeExporter",
    "read_jsonl",
]
