"""Trace spans and the per-stratum variance ledger.

A :class:`Span` describes one node of the stratified recursion tree: its
stratum path (the tuple of child indices from the root, ``-1`` marking a
residual-mixture pool), its local weight ``pi`` relative to the parent, the
sample budget it was allocated, the worlds it materialised, wall-clock
timings, and — for sampling leaves — a :class:`Ledger` of running
``(num, den)`` moments.

The ledger stores plain power sums (count, sum, sum of squares, cross
products), so the empirical per-stratum means and variances — and from them
the stratified variance decomposition of the paper's theorems — can be
reconstructed exactly from a trace file without rerunning the estimate:
``Var_hat(Phi) = sum_leaves w_l^2 * sigma_hat_l^2 / n_l`` where ``w_l`` is
the leaf's absolute stratum weight (product of the ``pi`` along its path).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

#: Path component marking a residual-mixture pool (or the FS complement)
#: hanging off a split node — never a real stratum index.
RESIDUAL_INDEX = -1


class Ledger:
    """Running ``(num, den)`` moments of the worlds a leaf evaluated."""

    __slots__ = ("n", "sum_num", "sumsq_num", "sum_den", "sumsq_den", "sum_cross")

    def __init__(self) -> None:
        self.n = 0
        self.sum_num = 0.0
        self.sumsq_num = 0.0
        self.sum_den = 0.0
        self.sumsq_den = 0.0
        self.sum_cross = 0.0

    def add_arrays(self, nums, dens) -> None:
        """Fold one evaluated world block's pair arrays into the moments."""
        self.n += int(nums.size)
        self.sum_num += float(nums.sum())
        self.sumsq_num += float((nums * nums).sum())
        self.sum_den += float(dens.sum())
        self.sumsq_den += float((dens * dens).sum())
        self.sum_cross += float((nums * dens).sum())

    def merge(self, other: "Ledger") -> None:
        self.n += other.n
        self.sum_num += other.sum_num
        self.sumsq_num += other.sumsq_num
        self.sum_den += other.sum_den
        self.sumsq_den += other.sumsq_den
        self.sum_cross += other.sum_cross

    @property
    def mean_num(self) -> float:
        return self.sum_num / self.n if self.n else 0.0

    @property
    def mean_den(self) -> float:
        return self.sum_den / self.n if self.n else 0.0

    def var_num(self) -> float:
        """Population variance of the per-world numerator."""
        if self.n <= 0:
            return 0.0
        mean = self.sum_num / self.n
        return max(0.0, self.sumsq_num / self.n - mean * mean)

    def var_den(self) -> float:
        """Population variance of the per-world denominator.

        Identically zero for unconditional queries (``den == 1`` per world);
        positive for conditional (Eq. 22) estimands, where it feeds the
        delta-method ratio variance.
        """
        if self.n <= 0:
            return 0.0
        mean = self.sum_den / self.n
        return max(0.0, self.sumsq_den / self.n - mean * mean)

    def cov(self) -> float:
        """Population covariance of the per-world ``(num, den)`` pair.

        Unlike the variances this may legitimately be negative, so no
        round-off clamping is applied.
        """
        if self.n <= 0:
            return 0.0
        return self.sum_cross / self.n - self.mean_num * self.mean_den

    def to_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "sum_num": self.sum_num,
            "sumsq_num": self.sumsq_num,
            "sum_den": self.sum_den,
            "sumsq_den": self.sumsq_den,
            "sum_cross": self.sum_cross,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Ledger":
        ledger = cls()
        ledger.n = int(data["n"])
        ledger.sum_num = float(data["sum_num"])
        ledger.sumsq_num = float(data["sumsq_num"])
        ledger.sum_den = float(data["sum_den"])
        ledger.sumsq_den = float(data["sumsq_den"])
        ledger.sum_cross = float(data["sum_cross"])
        return ledger


class Span:
    """One recursion node of a traced estimate (see module docstring)."""

    __slots__ = (
        "path", "kind", "pi", "pi0", "weight", "n_strata", "n_samples",
        "worlds", "seconds", "self_seconds", "pis", "allocations", "ledger",
    )

    def __init__(self, path: Tuple[int, ...]) -> None:
        self.path = tuple(int(i) for i in path)
        self.kind: Optional[str] = None          # "split" | "leaf" | "residual"
        self.pi: Optional[float] = None          # weight relative to the parent
        self.pi0 = 0.0                           # analytic all-fail mass (splits)
        self.weight: Optional[float] = None      # absolute weight, set at finish
        self.n_strata = 0
        self.n_samples = 0
        self.worlds = 0
        self.seconds = 0.0                       # inclusive subtree wall-clock
        self.self_seconds = 0.0                  # leaf sampling wall-clock
        self.pis: Optional[Tuple[float, ...]] = None
        self.allocations: Optional[Tuple[int, ...]] = None
        self.ledger: Optional[Ledger] = None

    @property
    def depth(self) -> int:
        return len(self.path)

    def ensure_ledger(self) -> Ledger:
        if self.ledger is None:
            self.ledger = Ledger()
        return self.ledger

    def wall_seconds(self) -> float:
        """Best available inclusive time: enter/exit timing, else leaf time."""
        return self.seconds if self.seconds > 0.0 else self.self_seconds

    def variance_contribution(self) -> float:
        """This leaf's term of the stratified variance decomposition.

        ``w^2 * sigma_hat^2 / n`` with the population variance of the
        per-world numerator; zero for split nodes, unweighted spans and
        single-world leaves (whose variance cannot be estimated).
        """
        if self.ledger is None or self.ledger.n < 1 or self.weight is None:
            return 0.0
        return self.weight * self.weight * self.ledger.var_num() / self.ledger.n

    def variance_contribution_den(self) -> float:
        """``w^2 * sigma_hat_den^2 / n`` — the denominator twin."""
        if self.ledger is None or self.ledger.n < 1 or self.weight is None:
            return 0.0
        return self.weight * self.weight * self.ledger.var_den() / self.ledger.n

    def covariance_contribution(self) -> float:
        """``w^2 * cov_hat(num, den) / n`` — may be negative."""
        if self.ledger is None or self.ledger.n < 1 or self.weight is None:
            return 0.0
        return self.weight * self.weight * self.ledger.cov() / self.ledger.n

    def merge(self, other: "Span") -> None:
        """Fold a worker-side span for the same path into this one."""
        if self.kind is None:
            self.kind = other.kind
        self.pi = self.pi if self.pi is not None else other.pi
        self.pi0 = self.pi0 or other.pi0
        self.n_strata = max(self.n_strata, other.n_strata)
        self.n_samples += other.n_samples
        self.worlds += other.worlds
        self.seconds += other.seconds
        self.self_seconds += other.self_seconds
        if self.pis is None:
            self.pis = other.pis
        if self.allocations is None:
            self.allocations = other.allocations
        if other.ledger is not None:
            self.ensure_ledger().merge(other.ledger)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "path": list(self.path),
            "kind": self.kind or "leaf",
            "n_samples": self.n_samples,
            "worlds": self.worlds,
            "seconds": self.seconds,
            "self_seconds": self.self_seconds,
        }
        if self.pi is not None:
            out["pi"] = self.pi
        if self.pi0:
            out["pi0"] = self.pi0
        if self.weight is not None:
            out["weight"] = self.weight
        if self.n_strata:
            out["n_strata"] = self.n_strata
        if self.pis is not None:
            out["pis"] = list(self.pis)
        if self.allocations is not None:
            out["allocations"] = list(self.allocations)
        if self.ledger is not None:
            out["ledger"] = self.ledger.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(tuple(data["path"]))
        span.kind = data.get("kind")
        span.pi = data.get("pi")
        span.pi0 = float(data.get("pi0", 0.0))
        span.weight = data.get("weight")
        span.n_strata = int(data.get("n_strata", 0))
        span.n_samples = int(data.get("n_samples", 0))
        span.worlds = int(data.get("worlds", 0))
        span.seconds = float(data.get("seconds", 0.0))
        span.self_seconds = float(data.get("self_seconds", 0.0))
        if data.get("pis") is not None:
            span.pis = tuple(float(p) for p in data["pis"])
        if data.get("allocations") is not None:
            span.allocations = tuple(int(a) for a in data["allocations"])
        if data.get("ledger") is not None:
            span.ledger = Ledger.from_dict(data["ledger"])
        return span

    def __repr__(self) -> str:  # noqa: D105
        return (
            f"Span(path={self.path!r}, kind={self.kind!r}, "
            f"n_samples={self.n_samples}, worlds={self.worlds})"
        )


def resolve_weights(spans: Dict[Tuple[int, ...], Span]) -> None:
    """Assign every span its absolute stratum weight, root downward.

    The root carries weight 1.  A child's weight is the parent's weight
    times its local ``pi`` — taken from the child span when the tracer saw
    the enter/exit pair, else from the parent split's recorded ``pis`` (the
    parallel decomposition emits children as jobs without entering them).
    """
    for path in sorted(spans, key=len):
        span = spans[path]
        if not path:
            span.weight = 1.0 if span.weight is None else span.weight
            continue
        parent = spans.get(path[:-1])
        parent_weight = 1.0 if parent is None or parent.weight is None else parent.weight
        pi = span.pi
        if pi is None and parent is not None and parent.pis is not None:
            index = path[-1]
            if 0 <= index < len(parent.pis):
                pi = float(parent.pis[index])
                span.pi = pi
        span.weight = parent_weight * (1.0 if pi is None else pi)


def sort_key(path: Sequence[int]) -> Tuple[int, Tuple[int, ...]]:
    """Deterministic span ordering: by depth, then lexicographic path."""
    return (len(path), tuple(path))


__all__ = ["Ledger", "Span", "RESIDUAL_INDEX", "resolve_weights", "sort_key"]
