"""``python -m repro.telemetry`` — alias for the ``repro-trace`` console script."""

import sys

from repro.telemetry.cli import main

sys.exit(main())
