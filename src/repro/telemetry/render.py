"""Human-readable views of a trace: recursion-tree profile + convergence.

:func:`render_profile` is the flamegraph-style text view: one line per span,
indented by recursion depth, with each stratum's share of wall-clock time,
sample budget, materialised worlds and estimated variance.  Variance shares
come straight from the per-stratum ledger
(:meth:`repro.telemetry.spans.Span.variance_contribution`), so the view *is*
the paper's stratified variance decomposition, measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.spans import RESIDUAL_INDEX, Span
from repro.telemetry.tracer import TraceReport


def _label(span: Span) -> str:
    if not span.path:
        name = "root"
    elif span.path[-1] == RESIDUAL_INDEX:
        name = "residual"
    else:
        name = f"s{span.path[-1]}"
    kind = span.kind or "leaf"
    return f"{'  ' * span.depth}{name} [{kind}]"


def _pct(part: float, total: float) -> str:
    if total <= 0.0:
        return "   - "
    return f"{100.0 * part / total:5.1f}"


def render_profile(report: TraceReport) -> str:
    """The recursion-tree profile: time / samples / variance per stratum."""
    spans = report.sorted_spans()
    total_var = report.estimated_variance()
    root = report.spans.get(())
    total_seconds = root.wall_seconds() if root is not None else 0.0
    lines = [
        f"trace: {report.estimator}  "
        f"spans={len(spans)}  value={report.meta.get('value', float('nan')):.6g}  "
        f"worlds={report.meta.get('n_worlds', 0)}  "
        f"est.var={total_var:.3e}",
        f"{'node':<32s} {'pi':>8s} {'N':>8s} {'worlds':>8s} "
        f"{'seconds':>9s} {'time%':>6s} {'var%':>6s}",
    ]
    for span in spans:
        pi = f"{span.pi:.4f}" if span.pi is not None else ("1.0000" if not span.path else "-")
        seconds = span.wall_seconds()
        var_share = (
            _pct(span.variance_contribution(), total_var)
            if span.ledger is not None
            else "   - "
        )
        lines.append(
            f"{_label(span):<32s} {pi:>8s} {span.n_samples:>8d} "
            f"{span.worlds:>8d} {seconds:>9.4f} "
            f"{_pct(seconds, total_seconds):>6s} {var_share:>6s}"
        )
        if span.kind == "split" and span.pi0 > 0.0:
            lines.append(
                f"{'  ' * (span.depth + 1)}(analytic pi0={span.pi0:.6f})"
            )
    if report.parallel is not None:
        par = report.parallel
        util = par.get("utilisation")
        util_text = f"{100.0 * util:.1f}%" if util is not None else "n/a"
        lines.append(
            f"parallel: workers={par['n_workers']} jobs={par['n_jobs']} "
            f"pool={par['pool_seconds']:.4f}s busy={par['busy_seconds']:.4f}s "
            f"utilisation={util_text} max_pending={par['max_pending']}"
        )
    return "\n".join(lines)


def render_convergence(report: TraceReport, limit: Optional[int] = None) -> str:
    """The convergence table: running estimate + CI per sample block."""
    events = report.events
    if not events:
        return "no convergence events recorded"
    if limit is not None and limit > 0 and len(events) > limit:
        step = len(events) / float(limit)
        picked = [events[int(i * step)] for i in range(limit)]
        if picked[-1] is not events[-1]:
            picked[-1] = events[-1]
        events = picked
    lines = [f"{'worlds':>10s} {'mean':>14s} {'ci95':>12s} {'den':>10s}"]
    for event in events:
        lines.append(
            f"{event['worlds']:>10d} {event['mean']:>14.6g} "
            f"{event['ci95']:>12.4g} {event['den']:>10.6g}"
        )
    dropped = report.meta.get("events_dropped", 0)
    if dropped:
        lines.append(f"({dropped} later blocks not stored)")
    return "\n".join(lines)


def render_summary(report: TraceReport) -> str:
    """One-paragraph overview of a traced run."""
    meta = report.meta
    leaves = report.leaf_spans()
    bits = [
        f"estimator={report.estimator}",
        f"value={meta.get('value', float('nan')):.6g}",
        f"N={meta.get('n_samples', 0)}",
        f"worlds={meta.get('n_worlds', 0)}",
        f"spans={report.n_spans}",
        f"leaves={len(leaves)}",
        f"est.var={report.estimated_variance():.3e}",
        f"seconds={report.total_seconds():.4f}",
    ]
    if meta.get("seed") is not None:
        bits.append(f"seed={meta['seed']}")
    if meta.get("n_workers"):
        bits.append(f"workers={meta['n_workers']}")
    return "  ".join(bits)


def render_bench_summary(payload: Dict) -> str:
    """One line per benchmark record of a ``repro-bench`` payload.

    ``serving_*`` records (the 1-vs-N concurrent-query protocol) get their
    throughput fields — queries/sec, cache hit rate, mean batch size and
    the speedup over the sequential baseline — instead of the worlds/sec
    column that traversal kernels report.
    """
    config = payload.get("config", {})
    head_bits = [f"bench: {payload.get('generated_by', '?')}"]
    for key in ("graph", "scale", "n_worlds", "seed", "kernel_backend"):
        if config.get(key) is not None:
            head_bits.append(f"{key}={config[key]}")
    lines = ["  ".join(head_bits)]
    for record in payload.get("records", []):
        kernel = str(record.get("kernel", "?"))
        bits = [
            f"{kernel:<24s}",
            f"graph={record.get('graph', '?')}",
            f"W={record.get('W', 0)}",
            f"seconds={record.get('seconds', float('nan')):.4f}",
        ]
        if kernel.startswith("serving_"):
            bits.append(f"queries={record.get('n_queries', 0)}")
            bits.append(f"q/s={record.get('queries_per_sec', float('nan')):.1f}")
            bits.append(f"hit_rate={record.get('cache_hit_rate', float('nan')):.2f}")
            bits.append(f"batch={record.get('batch_size_mean', float('nan')):.1f}")
            if record.get("cache_bytes_peak"):
                bits.append(f"cache_peak={record['cache_bytes_peak'] / 1024:.0f}KiB")
            if record.get("cache_oversize_misses"):
                bits.append(f"oversize={record['cache_oversize_misses']}")
            if record.get("speedup_vs_sequential") is not None:
                bits.append(f"speedup={record['speedup_vs_sequential']:.2f}x")
            if record.get("latency_p50_ms") is not None:
                bits.append(
                    "p50/p95/p99="
                    f"{record['latency_p50_ms']:.1f}/"
                    f"{record.get('latency_p95_ms', float('nan')):.1f}/"
                    f"{record.get('latency_p99_ms', float('nan')):.1f}ms"
                )
        else:
            bits.append(f"worlds/s={record.get('worlds_per_sec', float('nan')):.1f}")
            if record.get("speedup_vs_scalar") is not None:
                bits.append(f"speedup={record['speedup_vs_scalar']:.2f}x")
        lines.append("  ".join(bits))
    return "\n".join(lines)


def render_metrics_summary(records: List[Dict]) -> str:
    """One-line-per-snapshot view of a ``repro.metrics`` JSONL file.

    Each snapshot line carries the serving headline numbers — queries
    served, cache hit rate, latency p50/p95/p99 (from the merged
    ``repro_serving_query_latency_seconds`` histogram), estimates and
    worlds — followed by a family count, so a metrics file reads like the
    convergence table of the serving run that produced it.
    """
    from repro.metrics.exposition import scraped_from_record

    lines = [f"metrics: {len(records)} snapshot(s)"]
    for i, record in enumerate(records):
        scraped = scraped_from_record(record)
        queries = scraped.value_sum("repro_serving_queries_total")
        hits = scraped.value_sum("repro_cache_hits_total")
        misses = scraped.value_sum("repro_cache_misses_total")
        lookups = hits + misses
        hit_rate = hits / lookups if lookups > 0 else 0.0
        merged = scraped.histogram_merged("repro_serving_query_latency_seconds")
        if merged is not None and merged.n > 0:
            latency = "/".join(
                f"{merged.quantile(q) * 1e3:.1f}" for q in (0.5, 0.95, 0.99)
            )
        else:
            latency = "-"
        bits = [
            f"#{i}",
            f"ts={record.get('ts', float('nan')):.3f}",
            f"queries={queries:.0f}",
            f"hit_rate={hit_rate:.2f}",
            f"p50/p95/p99={latency}ms",
            f"estimates={scraped.value_sum('repro_estimates_total'):.0f}",
            f"worlds={scraped.value_sum('repro_estimate_worlds_total'):.0f}",
            f"families={len(record.get('metrics', {}))}",
        ]
        lines.append("  ".join(bits))
    return "\n".join(lines)


def variance_table(report: TraceReport) -> List[Tuple[Tuple[int, ...], Dict[str, float]]]:
    """Per-leaf variance-ledger rows, for programmatic figure reproduction."""
    rows = []
    for span in report.leaf_spans():
        ledger = span.ledger
        rows.append(
            (
                span.path,
                {
                    "weight": span.weight if span.weight is not None else float("nan"),
                    "n": float(ledger.n),
                    "mean_num": ledger.mean_num,
                    "var_num": ledger.var_num(),
                    "contribution": span.variance_contribution(),
                },
            )
        )
    return rows


__all__ = [
    "render_bench_summary",
    "render_convergence",
    "render_metrics_summary",
    "render_profile",
    "render_summary",
    "variance_table",
]
