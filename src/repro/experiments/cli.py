"""Command-line entry point: ``repro-experiments`` / ``python -m repro.experiments``.

Subcommands map one-to-one to the paper's evaluation artefacts::

    repro-experiments table5            # influence, relative variance
    repro-experiments table6            # influence, query time
    repro-experiments table7            # distance, relative variance
    repro-experiments table8            # distance, query time
    repro-experiments fig2              # scalability
    repro-experiments fig3              # relative variance vs sample size
    repro-experiments datasets          # dataset inventory
    repro-experiments all               # everything above, in order

Scale knobs (``--scale/--runs/--queries/--samples``) default to
laptop-friendly values; ``--paper-scale`` restores the published protocol
(very slow in pure Python).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.sample_size import run_sample_size
from repro.experiments.scalability import run_scalability
from repro.experiments.tables import distance_table, influence_table

TABLE_COMMANDS = ("table5", "table6", "table7", "table8")
ALL_COMMANDS = (*TABLE_COMMANDS, "fig2", "fig3", "datasets")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the evaluation of the ICDE'14 recursive "
        "stratified sampling paper.",
    )
    parser.add_argument("command", choices=(*ALL_COMMANDS, "all"))
    parser.add_argument("--scale", type=float, default=None, help="graph scale factor")
    parser.add_argument("--runs", type=int, default=None, help="estimator repeats per query")
    parser.add_argument("--queries", type=int, default=None, help="queries per dataset")
    parser.add_argument("--samples", type=int, default=None, help="sample size N")
    parser.add_argument("--seed", type=int, default=None, help="master random seed")
    parser.add_argument(
        "--datasets", type=str, default=None, help="comma-separated dataset subset"
    )
    parser.add_argument(
        "--estimators", type=str, default=None, help="comma-separated estimator subset"
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full protocol (500 runs x 1000 queries; very slow)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.paper() if args.paper_scale else ExperimentConfig.from_env()
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.runs is not None:
        overrides["n_runs"] = args.runs
    if args.queries is not None:
        overrides["n_queries"] = args.queries
    if args.samples is not None:
        overrides["sample_size"] = args.samples
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.datasets:
        overrides["datasets"] = tuple(t.strip() for t in args.datasets.split(",") if t.strip())
    if args.estimators:
        overrides["estimators"] = tuple(
            t.strip() for t in args.estimators.split(",") if t.strip()
        )
    return config.with_(**overrides) if overrides else config


def _run_command(command: str, config: ExperimentConfig) -> str:
    if command == "table5":
        return influence_table(config, "relative_variance").to_text()
    if command == "table6":
        return influence_table(config, "query_time").to_text(digits=4)
    if command == "table7":
        return distance_table(config, "relative_variance").to_text()
    if command == "table8":
        return distance_table(config, "query_time").to_text(digits=4)
    if command == "fig2":
        return run_scalability(config).to_text()
    if command == "fig3":
        return run_sample_size(config).to_text()
    if command == "datasets":
        lines = [f"{'Name':10s} {'Nodes':>8s} {'Edges':>9s}  Description"]
        for name in DATASET_NAMES:
            ds = load_dataset(name, scale=config.scale)
            lines.append(f"{ds.name:10s} {ds.n_nodes:8d} {ds.n_edges:9d}  {ds.description}")
        return "\n".join(lines)
    raise ValueError(f"unhandled command {command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    commands = ALL_COMMANDS if args.command == "all" else (args.command,)
    for command in commands:
        print(_run_command(command, config))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
