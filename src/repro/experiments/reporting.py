"""Plain-text report formatting in the style of the paper's tables."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_float(value: float, digits: int = 3) -> str:
    """Format a metric value; NaN prints as '--' like a blank table cell."""
    if value != value:  # NaN
        return "--"
    return f"{value:.{digits}f}"


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[tuple],
    row_header: str = "Dataset",
    digits: int = 3,
) -> str:
    """Render ``rows`` of ``(label, values)`` as a fixed-width text table."""
    header = [row_header, *columns]
    body: List[List[str]] = []
    for label, values in rows:
        body.append([str(label), *(format_float(v, digits) for v in values)])
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()
    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, rule, fmt_line(header), rule]
    lines.extend(fmt_line(r) for r in body)
    lines.append(rule)
    return "\n".join(lines)


def format_mapping_table(
    title: str,
    columns: Sequence[str],
    data: Mapping[str, Mapping[str, float]],
    row_header: str = "Dataset",
    digits: int = 3,
) -> str:
    """Render nested ``{row: {column: value}}`` data as a text table."""
    rows = [
        (label, [cells.get(col, float("nan")) for col in columns])
        for label, cells in data.items()
    ]
    return format_table(title, columns, rows, row_header=row_header, digits=digits)


__all__ = ["format_float", "format_table", "format_mapping_table"]
