"""Fig. 3 driver: relative variance vs sample size (paper §VI-E).

The paper's Fig. 3 plots the relative variance of the three best estimators
(RCSS, RSSIB, RSSIIB) on Condmat as the sample size varies; the finding is
that the curves are flat ("smooth") for ``N >= 1000`` on both query types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.registry import make_estimator
from repro.datasets.registry import load_dataset
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_mapping_table
from repro.experiments.runner import compare_estimators, relative_variances
from repro.experiments.workloads import distance_queries, influence_queries
from repro.rng import spawn_rngs

#: Paper's Fig. 3 estimators.
FIG3_ESTIMATORS: Tuple[str, ...] = ("RCSS", "RSSIB", "RSSIIB")
#: Default sweep of sample sizes.
FIG3_SAMPLE_SIZES: Tuple[int, ...] = (200, 500, 1_000, 2_000)


@dataclass
class SampleSizeResult:
    """Relative variance per (sample size, estimator), per query kind."""

    dataset: str
    sample_sizes: List[int] = field(default_factory=list)
    rvs: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def to_text(self, digits: int = 3) -> str:
        parts = []
        for kind, per_n in self.rvs.items():
            columns = sorted({e for cells in per_n.values() for e in cells})
            parts.append(
                format_mapping_table(
                    f"Fig. 3 ({kind}, {self.dataset}): relative variance vs sample size",
                    columns,
                    per_n,
                    row_header="N",
                    digits=digits,
                )
            )
        return "\n\n".join(parts)

    def series(self, kind: str, estimator: str) -> List[float]:
        """Relative variances across the sample-size sweep, in sweep order."""
        return [self.rvs[kind][str(n)][estimator] for n in self.sample_sizes]


def run_sample_size(
    config: ExperimentConfig,
    dataset_name: str = "Condmat",
    sample_sizes: Sequence[int] = FIG3_SAMPLE_SIZES,
    estimators: Sequence[str] = FIG3_ESTIMATORS,
) -> SampleSizeResult:
    """Reproduce Fig. 3 on ``dataset_name`` for both query kinds."""
    dataset = load_dataset(dataset_name, scale=config.scale)
    named = {name: make_estimator(name, config.settings) for name in estimators}
    if "NMC" not in named:
        named = {"NMC": make_estimator("NMC", config.settings), **named}
    result = SampleSizeResult(dataset=dataset.name, sample_sizes=list(sample_sizes))
    kinds = {
        "influence": influence_queries,
        "distance": distance_queries,
    }
    kind_rngs = spawn_rngs(config.seed, len(kinds))
    for (kind, factory), kind_rng in zip(kinds.items(), kind_rngs):
        queries = factory(dataset.graph, config.n_queries, kind_rng)
        per_n: Dict[str, Dict[str, float]] = {}
        for n in sample_sizes:
            sums = {name: 0.0 for name in named}
            used = 0
            for query in queries:
                stats = compare_estimators(
                    dataset.graph, query, named, n, config.n_runs, kind_rng,
                    config.n_workers, config.audit,
                )
                rvs = relative_variances(stats)
                if any(v != v for v in rvs.values()):
                    continue
                for name, rv in rvs.items():
                    sums[name] += rv
                used += 1
            if used == 0:
                raise ExperimentError(
                    f"every {kind} query degenerate at N={n}; raise n_runs/scale"
                )
            per_n[str(n)] = {name: total / used for name, total in sums.items()}
        result.rvs[kind] = per_n
    return result


__all__ = ["FIG3_ESTIMATORS", "FIG3_SAMPLE_SIZES", "SampleSizeResult", "run_sample_size"]
