"""Fig. 2 driver: average query time vs graph size (paper §VI-D).

Four ER graphs in a 1:2:3:4 size progression (200k/800k … 800k/3.2m nodes/
edges at ``scale=1``); for each, the average per-query time of every
estimator on influence and expected-reliable distance queries.  The paper's
claim is *linear growth* with comparable constants across estimators, which
:meth:`ScalabilityResult.growth_ratios` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.registry import CUTSET_ESTIMATORS, make_estimator
from repro.datasets.synthetic import scalability_series
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_mapping_table
from repro.experiments.runner import run_estimator
from repro.experiments.workloads import distance_queries, influence_queries
from repro.rng import spawn_rngs

QUERY_KINDS = ("influence", "distance")


@dataclass
class ScalabilityResult:
    """Average query time per (graph size, estimator), per query kind."""

    labels: List[str] = field(default_factory=list)
    sizes: Dict[str, int] = field(default_factory=dict)
    times: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def to_text(self, digits: int = 4) -> str:
        parts = []
        for kind, per_label in self.times.items():
            columns = sorted({e for cells in per_label.values() for e in cells})
            parts.append(
                format_mapping_table(
                    f"Fig. 2 ({kind}): avg query time (s) vs graph size",
                    columns,
                    per_label,
                    row_header="Size",
                    digits=digits,
                )
            )
        return "\n\n".join(parts)

    def growth_ratios(self, kind: str, estimator: str) -> List[float]:
        """Per-step time ratio between consecutive sizes (linear => ~ size ratio)."""
        series = [self.times[kind][label][estimator] for label in self.labels]
        return [b / a for a, b in zip(series, series[1:]) if a > 0]


def run_scalability(config: ExperimentConfig) -> ScalabilityResult:
    """Reproduce Fig. 2(a)/(b) at ``config.scale`` of the paper's graph sizes."""
    result = ScalabilityResult(times={kind: {} for kind in QUERY_KINDS})
    graphs = list(scalability_series(scale=config.scale, rng=config.seed))
    rngs = spawn_rngs(config.seed, len(graphs))
    for (label, graph), graph_rng in zip(graphs, rngs):
        result.labels.append(label)
        result.sizes[label] = graph.n_edges
        for kind in QUERY_KINDS:
            if kind == "influence":
                queries = influence_queries(graph, config.n_queries, graph_rng)
            else:
                queries = distance_queries(graph, config.n_queries, graph_rng)
            cells: Dict[str, float] = {}
            for name in config.estimators:
                if name in CUTSET_ESTIMATORS and not queries[0].has_cut_set:
                    continue
                estimator = make_estimator(name, config.settings)
                total = 0.0
                for query in queries:
                    stats = run_estimator(
                        graph, query, estimator, config.sample_size, config.n_runs,
                        graph_rng, config.n_workers, config.audit,
                    )
                    total += stats.avg_time
                cells[name] = total / len(queries)
            result.times[kind][label] = cells
    return result


__all__ = ["QUERY_KINDS", "ScalabilityResult", "run_scalability"]
