"""Experiment configuration.

The paper's protocol (§VI-A): sample size ``N = 1000``; ``r = 5`` for
class-I, ``r = 50`` for class-II, ``tau = 10``; every estimator re-run 500
times per query to estimate its variance; 1000 random queries per dataset;
results averaged over queries.  Running that verbatim in pure Python takes
CPU-days, so the default configuration scales the graphs down and trims the
repeat counts while keeping the protocol identical; ``ExperimentConfig.paper()``
restores the full parameters, and environment variables override the
defaults for the benchmark suite:

========================  ==========================================
``REPRO_SCALE``           graph scale factor (default 0.02)
``REPRO_RUNS``            estimator repeats per query (default 25)
``REPRO_QUERIES``         queries per dataset (default 4)
``REPRO_SAMPLES``         sample size N (default 1000)
``REPRO_WORKERS``         parallel workers per estimate (default 0 = sequential)
``REPRO_DATASETS``        comma-separated dataset subset
``REPRO_ESTIMATORS``      comma-separated estimator subset
``REPRO_AUDIT``           invariant auditing per estimate (default off)
========================  ==========================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Tuple

from repro import audit as _audit
from repro.core.registry import EstimatorSettings, PAPER_ESTIMATORS
from repro.datasets.registry import DATASET_NAMES
from repro.errors import ExperimentError


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by every experiment driver."""

    sample_size: int = 1_000
    n_runs: int = 25
    n_queries: int = 4
    scale: float = 0.02
    seed: int = 2014
    n_workers: int = 0
    audit: bool = False
    datasets: Tuple[str, ...] = tuple(DATASET_NAMES)
    estimators: Tuple[str, ...] = tuple(PAPER_ESTIMATORS)
    settings: EstimatorSettings = field(default_factory=EstimatorSettings)

    def __post_init__(self) -> None:
        if self.sample_size <= 0:
            raise ExperimentError("sample_size must be positive")
        if self.n_runs < 2:
            raise ExperimentError("n_runs must be at least 2 to estimate a variance")
        if self.n_queries <= 0:
            raise ExperimentError("n_queries must be positive")
        if self.scale <= 0:
            raise ExperimentError("scale must be positive")
        if self.n_workers < 0:
            raise ExperimentError("n_workers must be >= 0 (0 = sequential)")

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The paper's full-scale protocol (§VI-A) — CPU-days in pure Python."""
        return cls(sample_size=1_000, n_runs=500, n_queries=1_000, scale=1.0)

    @classmethod
    def from_env(cls, **overrides) -> "ExperimentConfig":
        """Defaults overridden by ``REPRO_*`` environment variables, then kwargs."""
        env_map = {
            "scale": ("REPRO_SCALE", float),
            "n_runs": ("REPRO_RUNS", int),
            "n_queries": ("REPRO_QUERIES", int),
            "sample_size": ("REPRO_SAMPLES", int),
            "n_workers": ("REPRO_WORKERS", int),
        }
        kwargs = {"audit": _audit.env_enabled()}
        for attr, (var, cast) in env_map.items():
            raw = os.environ.get(var)
            if raw is not None:
                try:
                    kwargs[attr] = cast(raw)
                except ValueError as exc:
                    raise ExperimentError(f"cannot parse {var}={raw!r}") from exc
        for var, attr in (("REPRO_DATASETS", "datasets"), ("REPRO_ESTIMATORS", "estimators")):
            raw = os.environ.get(var)
            if raw is not None:
                kwargs[attr] = tuple(token.strip() for token in raw.split(",") if token.strip())
        kwargs.update(overrides)
        return cls(**kwargs)

    def with_(self, **overrides) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


__all__ = ["ExperimentConfig"]
