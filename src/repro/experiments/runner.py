"""Repeated-run measurement protocol (paper §VI-A, "Evaluation metric").

For each (dataset, query, estimator) the paper runs the estimator 500 times,
takes the unbiased sample variance across runs, and reports it relative to
NMC's variance on the same query; query times are averaged the same way.
:func:`compare_estimators` performs one such cell, :mod:`.tables` aggregates
cells into the paper's tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.base import Estimator
from repro.errors import ExperimentError
from repro.graph.uncertain import UncertainGraph
from repro.queries.base import Query
from repro.rng import RngLike, spawn_rngs


@dataclass
class RunStats:
    """Statistics over repeated runs of one estimator on one query."""

    estimator: str
    values: np.ndarray
    total_time: float
    total_worlds: int

    @property
    def n_runs(self) -> int:
        return int(self.values.size)

    @property
    def mean(self) -> float:
        return float(np.nanmean(self.values))

    @property
    def variance(self) -> float:
        """Unbiased (ddof=1) sample variance across runs — the paper's metric."""
        finite = self.values[np.isfinite(self.values)]
        if finite.size < 2:
            return float("nan")
        return float(np.var(finite, ddof=1))

    @property
    def avg_time(self) -> float:
        return self.total_time / max(self.n_runs, 1)

    @property
    def avg_worlds(self) -> float:
        return self.total_worlds / max(self.n_runs, 1)


def run_estimator(
    graph: UncertainGraph,
    query: Query,
    estimator: Estimator,
    n_samples: int,
    n_runs: int,
    rng: RngLike = None,
    n_workers: int = 0,
    audit: Optional[bool] = None,
) -> RunStats:
    """Run ``estimator`` ``n_runs`` times with independent random streams.

    ``n_workers`` is forwarded to :meth:`Estimator.estimate`: ``0`` keeps
    the sequential path, ``>= 1`` runs each estimate through the parallel
    engine (run-to-run streams stay independent either way).  ``audit`` is
    forwarded likewise: ``None`` honours ``REPRO_AUDIT``; ``True`` audits
    every run, so any invariant violation aborts the whole protocol with a
    :class:`repro.audit.AuditError` naming the offending estimator.
    """
    if n_runs < 1:
        raise ExperimentError("n_runs must be positive")
    rngs = spawn_rngs(rng, n_runs)
    values = np.empty(n_runs, dtype=np.float64)
    total_worlds = 0
    started = time.perf_counter()
    for i, child in enumerate(rngs):
        result = estimator.estimate(
            graph, query, n_samples, rng=child, n_workers=n_workers, audit=audit
        )
        values[i] = result.value
        total_worlds += result.n_worlds
    elapsed = time.perf_counter() - started
    return RunStats(estimator.name, values, elapsed, total_worlds)


def compare_estimators(
    graph: UncertainGraph,
    query: Query,
    estimators: Mapping[str, Estimator],
    n_samples: int,
    n_runs: int,
    rng: RngLike = None,
    n_workers: int = 0,
    audit: Optional[bool] = None,
) -> Dict[str, RunStats]:
    """One table cell: repeated runs for every estimator on one query."""
    rngs = spawn_rngs(rng, len(estimators))
    return {
        name: run_estimator(
            graph, query, est, n_samples, n_runs, child, n_workers, audit
        )
        for (name, est), child in zip(estimators.items(), rngs)
    }


def relative_variances(
    stats: Mapping[str, RunStats],
    baseline: str = "NMC",
) -> Dict[str, float]:
    """Variance of each estimator divided by the baseline's (paper's RV metric).

    Returns ``nan`` for every entry when the baseline variance is zero or
    undefined (a degenerate query); callers skip such queries, as the paper's
    averaging implicitly does.
    """
    if baseline not in stats:
        raise ExperimentError(f"baseline {baseline!r} missing from stats")
    base_var = stats[baseline].variance
    out: Dict[str, float] = {}
    for name, stat in stats.items():
        if not np.isfinite(base_var) or base_var <= 0.0:
            out[name] = float("nan")
        else:
            out[name] = stat.variance / base_var
    return out


__all__ = ["RunStats", "run_estimator", "compare_estimators", "relative_variances"]
