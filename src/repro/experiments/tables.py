"""Drivers for the paper's Tables V–VIII.

Table V/VII report per-estimator *relative variance* (variance across
repeated runs, divided by NMC's, averaged over random queries); Table VI/VIII
report average query time.  One generic engine parameterised by query type
and metric produces all four.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.core.registry import (
    BFS_ESTIMATORS,
    CUTSET_ESTIMATORS,
    make_estimator,
)
from repro.datasets.registry import load_dataset
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_mapping_table
from repro.experiments.runner import compare_estimators, relative_variances
from repro.experiments.workloads import distance_queries, influence_queries
from repro.graph.uncertain import UncertainGraph
from repro.queries.base import Query
from repro.rng import spawn_rngs

QueryFactory = Callable[[UncertainGraph, int, np.random.Generator], List[Query]]

METRICS = ("relative_variance", "query_time")


@dataclass
class TableResult:
    """A reproduced paper table: dataset rows x estimator columns."""

    title: str
    metric: str
    columns: List[str]
    cells: Dict[str, Dict[str, float]] = field(default_factory=dict)
    queries_used: Dict[str, int] = field(default_factory=dict)

    def to_text(self, digits: int = 3) -> str:
        return format_mapping_table(self.title, self.columns, self.cells, digits=digits)

    def column(self, estimator: str) -> Dict[str, float]:
        """One estimator's value per dataset."""
        return {ds: cells[estimator] for ds, cells in self.cells.items()}


def _build_estimators(config: ExperimentConfig, query_sample: Query) -> Dict[str, object]:
    """Instantiate the configured estimators, dropping those the query can't serve."""
    out = {}
    for name in config.estimators:
        if name in CUTSET_ESTIMATORS and not query_sample.has_cut_set:
            continue
        out[name] = make_estimator(name, config.settings)
    return out


def run_table(
    config: ExperimentConfig,
    query_factory: QueryFactory,
    metric: str,
    title: str,
) -> TableResult:
    """Generic Table V–VIII engine.

    For every dataset: draw ``n_queries`` random queries, measure every
    estimator ``n_runs`` times per query, and average the chosen metric over
    queries (skipping degenerate queries whose NMC variance is zero, as the
    paper's protocol implicitly does).
    """
    if metric not in METRICS:
        raise ExperimentError(f"metric must be one of {METRICS}, got {metric!r}")
    result = TableResult(title=title, metric=metric, columns=list(config.estimators))
    dataset_rngs = spawn_rngs(config.seed, len(config.datasets))
    for dataset_name, ds_rng in zip(config.datasets, dataset_rngs):
        dataset = load_dataset(dataset_name, scale=config.scale)
        queries = query_factory(dataset.graph, config.n_queries, ds_rng)
        estimators = _build_estimators(config, queries[0])
        sums = {name: 0.0 for name in estimators}
        used = 0
        for query in queries:
            stats = compare_estimators(
                dataset.graph,
                query,
                estimators,
                config.sample_size,
                config.n_runs,
                ds_rng,
                config.n_workers,
                config.audit,
            )
            if metric == "relative_variance":
                rvs = relative_variances(stats)
                if any(v != v for v in rvs.values()):  # degenerate query
                    continue
                for name, rv in rvs.items():
                    sums[name] += rv
            else:
                for name, stat in stats.items():
                    sums[name] += stat.avg_time
            used += 1
        if used == 0:
            raise ExperimentError(
                f"every query on dataset {dataset_name!r} was degenerate; "
                "increase n_runs or the graph scale"
            )
        result.cells[dataset.name] = {
            name: total / used for name, total in sums.items()
        }
        result.queries_used[dataset.name] = used
    return result


def influence_table(config: ExperimentConfig, metric: str = "relative_variance") -> TableResult:
    """Table V (``metric="relative_variance"``) or Table VI (``"query_time"``)."""
    which = "Table V" if metric == "relative_variance" else "Table VI"
    pretty = "relative variance" if metric == "relative_variance" else "avg query time (s)"
    return run_table(
        config,
        lambda graph, n, rng: influence_queries(graph, n, rng),
        metric,
        f"{which}: influence function evaluation — {pretty}",
    )


def distance_table(config: ExperimentConfig, metric: str = "relative_variance") -> TableResult:
    """Table VII (``metric="relative_variance"``) or Table VIII (``"query_time"``)."""
    which = "Table VII" if metric == "relative_variance" else "Table VIII"
    pretty = "relative variance" if metric == "relative_variance" else "avg query time (s)"
    return run_table(
        config,
        lambda graph, n, rng: distance_queries(graph, n, rng),
        metric,
        f"{which}: expected-reliable distance query — {pretty}",
    )


__all__ = ["METRICS", "TableResult", "run_table", "influence_table", "distance_table"]
