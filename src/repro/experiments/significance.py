"""Statistical significance of variance comparisons.

The paper's relative-variance cells are ratios of two sample variances over
500 runs; reproductions typically afford far fewer runs, where a cell like
``0.83`` may or may not mean anything.  This module provides two tools:

* :func:`variance_ratio_ci` — a bootstrap confidence interval for
  ``var(A)/var(B)`` from paired run values;
* :func:`is_significantly_smaller` — the decision the benchmark assertions
  actually need ("is A's variance smaller than B's at this confidence?").

A normal-theory F-interval is deliberately avoided: estimator run values
are averages of a few hundred worlds and close to normal, but stratified
estimators mix deterministic strata contributions that thin the tails, so
the bootstrap is the safer default.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import ExperimentError
from repro.rng import RngLike, resolve_rng


@dataclass(frozen=True)
class RatioCI:
    """Bootstrap confidence interval for a variance ratio."""

    point: float
    lower: float
    upper: float
    confidence: float
    n_bootstrap: int

    def excludes_one(self) -> bool:
        """True when the interval lies entirely below or above 1."""
        return self.upper < 1.0 or self.lower > 1.0


def variance_ratio_ci(
    values_a: np.ndarray,
    values_b: np.ndarray,
    confidence: float = 0.95,
    n_bootstrap: int = 2_000,
    rng: RngLike = None,
) -> RatioCI:
    """Percentile-bootstrap CI for ``var(values_a) / var(values_b)``.

    The two run sets are resampled independently (they come from
    independent random streams in the harness).
    """
    values_a = np.asarray(values_a, dtype=np.float64)
    values_b = np.asarray(values_b, dtype=np.float64)
    if values_a.size < 3 or values_b.size < 3:
        raise ExperimentError("need at least 3 runs per estimator for a ratio CI")
    if not 0.5 < confidence < 1.0:
        raise ExperimentError("confidence must be in (0.5, 1)")
    var_b = values_b.var(ddof=1)
    if var_b <= 0:
        raise ExperimentError("baseline variance is zero; the ratio is undefined")
    gen = resolve_rng(rng)
    point = float(values_a.var(ddof=1) / var_b)

    idx_a = gen.integers(0, values_a.size, size=(n_bootstrap, values_a.size))
    idx_b = gen.integers(0, values_b.size, size=(n_bootstrap, values_b.size))
    boot_a = values_a[idx_a].var(ddof=1, axis=1)
    boot_b = values_b[idx_b].var(ddof=1, axis=1)
    valid = boot_b > 0
    if not valid.any():
        raise ExperimentError("bootstrap produced no valid baseline variances")
    ratios = boot_a[valid] / boot_b[valid]
    alpha = 1.0 - confidence
    lower, upper = np.quantile(ratios, [alpha / 2, 1 - alpha / 2])
    return RatioCI(
        point=point,
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        n_bootstrap=int(n_bootstrap),
    )


def is_significantly_smaller(
    values_a: np.ndarray,
    values_b: np.ndarray,
    confidence: float = 0.95,
    n_bootstrap: int = 2_000,
    rng: RngLike = None,
) -> bool:
    """Whether ``var(values_a) < var(values_b)`` at the given confidence."""
    ci = variance_ratio_ci(values_a, values_b, confidence, n_bootstrap, rng)
    return ci.upper < 1.0


def runs_needed_for_ratio_precision(relative_error: float) -> int:
    """Rule-of-thumb run count for a variance-ratio cell.

    The sample variance of ``R`` (near-)normal runs has relative standard
    deviation ``sqrt(2/R)``; a ratio of two independent ones has roughly
    ``sqrt(4/R)``.  Inverting gives the run count for a target relative
    error — e.g. 10% needs ~400 runs, matching the paper's choice of 500.
    """
    if not 0 < relative_error < 1:
        raise ExperimentError("relative_error must be in (0, 1)")
    return int(np.ceil(4.0 / relative_error**2))


__all__ = [
    "RatioCI",
    "variance_ratio_ci",
    "is_significantly_smaller",
    "runs_needed_for_ratio_precision",
]
