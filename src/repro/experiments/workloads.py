"""Random query workloads (paper §VI-B/§VI-C).

The paper draws 1000 random query nodes (influence) and 1000 random node
pairs (distance) per dataset.  Uniformly random pairs on a sparse graph are
mostly mutually unreachable, which makes the conditional distance query
degenerate (no run ever observes the event, variance undefined), so —
matching the spirit of "random queries with a meaningful answer" — query
nodes are drawn among nodes with outgoing edges, and distance targets among
nodes reachable from the source when every edge is present.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ExperimentError
from repro.graph.uncertain import UncertainGraph
from repro.queries.distance import ReliableDistanceQuery
from repro.queries.influence import InfluenceQuery
from repro.queries.traversal import reachable_mask
from repro.rng import RngLike, resolve_rng


def _nodes_with_out_edges(graph: UncertainGraph) -> np.ndarray:
    degrees = np.diff(graph.adjacency.indptr)
    return np.flatnonzero(degrees > 0)


def influence_queries(
    graph: UncertainGraph,
    n_queries: int,
    rng: RngLike = None,
) -> List[InfluenceQuery]:
    """Draw ``n_queries`` single-seed influence queries."""
    gen = resolve_rng(rng)
    candidates = _nodes_with_out_edges(graph)
    if candidates.size == 0:
        raise ExperimentError("graph has no node with outgoing edges")
    seeds = gen.choice(candidates, size=n_queries, replace=n_queries > candidates.size)
    return [InfluenceQuery(int(seed)) for seed in seeds]


def distance_queries(
    graph: UncertainGraph,
    n_queries: int,
    rng: RngLike = None,
    answer_set: str = "frontier",
    max_attempts_per_query: int = 50,
) -> List[ReliableDistanceQuery]:
    """Draw ``n_queries`` (s, t) expected-reliable-distance queries.

    Targets are sampled from the set of nodes reachable from ``s`` in the
    certain graph (all edges present), so the conditioning event has positive
    probability.
    """
    gen = resolve_rng(rng)
    candidates = _nodes_with_out_edges(graph)
    if candidates.size == 0:
        raise ExperimentError("graph has no node with outgoing edges")
    all_present = np.ones(graph.n_edges, dtype=bool)
    queries: List[ReliableDistanceQuery] = []
    attempts = 0
    budget = n_queries * max_attempts_per_query
    while len(queries) < n_queries:
        attempts += 1
        if attempts > budget:
            raise ExperimentError(
                f"could not find {n_queries} connected (s, t) pairs in "
                f"{budget} attempts; the graph may be an anti-matching"
            )
        s = int(gen.choice(candidates))
        reach = reachable_mask(graph, all_present, s)
        reach[s] = False
        targets = np.flatnonzero(reach)
        if targets.size == 0:
            continue
        t = int(gen.choice(targets))
        queries.append(ReliableDistanceQuery(s, t, answer_set=answer_set))
    return queries


__all__ = ["influence_queries", "distance_queries"]
