"""Experiment harness reproducing the paper's evaluation (§VI).

One driver per paper artefact:

* Tables V/VI — :func:`repro.experiments.tables.influence_table`
* Tables VII/VIII — :func:`repro.experiments.tables.distance_table`
* Fig. 2 — :func:`repro.experiments.scalability.run_scalability`
* Fig. 3 — :func:`repro.experiments.sample_size.run_sample_size`

All drivers take an :class:`~repro.experiments.config.ExperimentConfig`,
whose defaults are laptop-scale; ``ExperimentConfig.paper()`` restores the
paper's parameters, and environment variables (``REPRO_SCALE`` etc.) let
the benchmark suite be dialled up without code changes.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunStats, run_estimator, compare_estimators, relative_variances
from repro.experiments.workloads import influence_queries, distance_queries
from repro.experiments.tables import TableResult, influence_table, distance_table
from repro.experiments.scalability import ScalabilityResult, run_scalability
from repro.experiments.sample_size import SampleSizeResult, run_sample_size
from repro.experiments.significance import (
    RatioCI,
    variance_ratio_ci,
    is_significantly_smaller,
    runs_needed_for_ratio_precision,
)

__all__ = [
    "ExperimentConfig",
    "RunStats",
    "run_estimator",
    "compare_estimators",
    "relative_variances",
    "influence_queries",
    "distance_queries",
    "TableResult",
    "influence_table",
    "distance_table",
    "ScalabilityResult",
    "run_scalability",
    "SampleSizeResult",
    "run_sample_size",
    "RatioCI",
    "variance_ratio_ci",
    "is_significantly_smaller",
    "runs_needed_for_ratio_precision",
]
