"""repro — recursive stratified sampling on uncertain graphs.

A from-scratch Python implementation of *"Efficient and Accurate Query
Evaluation on Uncertain Graphs via Recursive Stratified Sampling"* (Li, Yu,
Mao, Jin — ICDE 2014): the uncertain-graph substrate, the two query
evaluation problem classes (expectation and threshold), and all eight
estimators (NMC, BSS-I/II, RSS-I/II, FS, BCSS, RCSS) with the paper's
edge-selection and sample-allocation strategies.

Quickstart
----------
>>> from repro import generators, InfluenceQuery, RCSS
>>> graph = generators.paper_running_example()
>>> query = InfluenceQuery(seeds=0)
>>> result = RCSS().estimate(graph, query, n_samples=1000, rng=7)
>>> 0.0 <= result.value <= 4.0
True
"""

from repro.audit import AuditError, AuditReport
from repro.telemetry import TRACE_ENV, TRACE_FILE_ENV, Tracer, TraceReport
from repro.errors import (
    ReproError,
    GraphError,
    ProbabilityError,
    StatusError,
    QueryError,
    EstimatorError,
    EnumerationError,
    DatasetError,
    ExperimentError,
)
from repro.graph import (
    UncertainGraph,
    EdgeStatuses,
    FREE,
    ABSENT,
    PRESENT,
    PossibleWorld,
    sample_world,
    enumerate_worlds,
    generators,
    read_edge_tsv,
    write_edge_tsv,
)
from repro.queries import (
    Query,
    CutSetQuery,
    ThresholdQuery,
    Comparison,
    UNREACHABLE,
    InfluenceQuery,
    ThresholdInfluenceQuery,
    ReliableDistanceQuery,
    ThresholdDistanceQuery,
    ReachabilityQuery,
    DistanceConstrainedReachabilityQuery,
    NetworkReliabilityQuery,
    exact_value,
)
from repro.applications import (
    k_nearest_neighbors,
    greedy_influence_maximization,
    estimate_to_precision,
)
from repro.core import (
    Estimator,
    EstimateResult,
    NMC,
    BSS1,
    RSS1,
    BSS2,
    RSS2,
    FocalSampling,
    BCSS,
    RCSS,
    RandomSelection,
    BFSSelection,
    EstimatorSettings,
    PAPER_ESTIMATORS,
    make_estimator,
    make_paper_estimators,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphError",
    "ProbabilityError",
    "StatusError",
    "QueryError",
    "EstimatorError",
    "EnumerationError",
    "DatasetError",
    "ExperimentError",
    # audit
    "AuditError",
    "AuditReport",
    # telemetry
    "TRACE_ENV",
    "TRACE_FILE_ENV",
    "Tracer",
    "TraceReport",
    # graph
    "UncertainGraph",
    "EdgeStatuses",
    "FREE",
    "ABSENT",
    "PRESENT",
    "PossibleWorld",
    "sample_world",
    "enumerate_worlds",
    "generators",
    "read_edge_tsv",
    "write_edge_tsv",
    # queries
    "Query",
    "CutSetQuery",
    "ThresholdQuery",
    "Comparison",
    "UNREACHABLE",
    "InfluenceQuery",
    "ThresholdInfluenceQuery",
    "ReliableDistanceQuery",
    "ThresholdDistanceQuery",
    "ReachabilityQuery",
    "DistanceConstrainedReachabilityQuery",
    "NetworkReliabilityQuery",
    "exact_value",
    # estimators
    "Estimator",
    "EstimateResult",
    "NMC",
    "BSS1",
    "RSS1",
    "BSS2",
    "RSS2",
    "FocalSampling",
    "BCSS",
    "RCSS",
    "RandomSelection",
    "BFSSelection",
    "EstimatorSettings",
    "PAPER_ESTIMATORS",
    "make_estimator",
    "make_paper_estimators",
    # applications
    "k_nearest_neighbors",
    "greedy_influence_maximization",
    "estimate_to_precision",
]
