"""Sequential stopping: round schedules and the pooled running estimate.

The adaptive engine (:mod:`repro.adaptive.engine`) spends its budget in
geometrically growing *rounds*: a pilot of ``min_worlds`` worlds, then each
following round roughly ``growth`` times larger, until either the running
confidence interval reaches the target half-width or the ``max_worlds``
budget is exhausted.  Geometric growth keeps the overshoot bounded — the
run never spends more than ``growth`` times the worlds it would have needed
with per-block stopping — while amortising the per-round fixed costs
(recursion set-up, pool dispatch) over ever larger blocks.

Each round is an independent unbiased estimate at its own derived seed;
:class:`RunningEstimate` pools the round ``(num, den)`` means with weights
proportional to the round budgets and tracks the delta-method variance of
the pooled ratio, so the stopping rule is correct for conditional (Eq. 22)
estimands too.  Everything here is deterministic given the round inputs:
the stopping decision is a pure function of the (seed-pinned) block stream,
which is what makes fixed-seed adaptive estimates bit-identical across
worker counts and kernel backends.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.variance import DEFAULT_CONFIDENCE, ratio_variance, z_score
from repro.errors import EstimatorError

#: Default pilot-round size (worlds) when the caller does not choose one.
DEFAULT_MIN_WORLDS = 256

#: Default geometric growth factor between rounds.
DEFAULT_GROWTH = 2.0


def round_budgets(
    max_worlds: int,
    min_worlds: int = DEFAULT_MIN_WORLDS,
    growth: float = DEFAULT_GROWTH,
) -> List[int]:
    """The full deterministic round schedule for a ``max_worlds`` budget.

    The first entry is the pilot (``min(min_worlds, max_worlds)``); each
    later round is ``growth`` times the previous, with the final round
    clipped so the budgets sum to exactly ``max_worlds``.  A schedule is a
    function of ``(max_worlds, min_worlds, growth)`` alone — never of the
    data — so two runs at the same parameters draw identical streams.
    """
    if max_worlds <= 0:
        raise EstimatorError(f"max_worlds must be positive, got {max_worlds}")
    if min_worlds <= 0:
        raise EstimatorError(f"min_worlds must be positive, got {min_worlds}")
    if growth < 1.0:
        raise EstimatorError(f"growth must be >= 1.0, got {growth}")
    budgets: List[int] = []
    remaining = int(max_worlds)
    step = min(int(min_worlds), remaining)
    while remaining > 0:
        take = min(step, remaining)
        budgets.append(take)
        remaining -= take
        # int() truncation plus the max() keep the schedule strictly
        # progressing even for growth == 1.0.
        step = max(step + 1, int(step * growth))
    return budgets


class RunningEstimate:
    """The pooled estimate over completed rounds, with its stopping rule.

    Round ``r`` contributes its mean pair ``(num_r, den_r)`` — an unbiased
    estimate of the query pair — and the estimated variance components of
    that round estimate (``Var(num_r)``, ``Var(den_r)``, ``Cov``, e.g. from
    the round's telemetry ledger).  Pooling weights are the round budgets:
    ``w_r = B_r / sum(B)``, so the pooled pair is the budget-weighted mean
    of independent round estimates and its variance components are
    ``sum w_r^2 V_r``.  The half-width is the delta-method CI of the pooled
    ratio at the configured confidence level.

    The pooled value is *not* bit-identical to a single run at the combined
    budget (rounds re-seed and re-stratify); it is bit-identical to any
    other adaptive run at the same seed and parameters, which is the
    determinism contract adaptive mode makes.
    """

    __slots__ = (
        "target_ci", "confidence", "_z",
        "_budgets", "_nums", "_dens", "_v_num", "_v_den", "_v_cov",
    )

    def __init__(
        self,
        target_ci: float,
        confidence: float = DEFAULT_CONFIDENCE,
    ) -> None:
        if not target_ci > 0.0:
            raise EstimatorError(f"target_ci must be positive, got {target_ci}")
        self.target_ci = float(target_ci)
        self.confidence = float(confidence)
        self._z = z_score(confidence)
        self._budgets: List[int] = []
        self._nums: List[float] = []
        self._dens: List[float] = []
        self._v_num: List[float] = []
        self._v_den: List[float] = []
        self._v_cov: List[float] = []

    def add_round(
        self,
        budget: int,
        num: float,
        den: float,
        var_num: float = 0.0,
        var_den: float = 0.0,
        cov: float = 0.0,
    ) -> None:
        """Fold one completed round's estimate and variance components in."""
        if budget <= 0:
            raise EstimatorError(f"round budget must be positive, got {budget}")
        if var_num < 0.0 or var_den < 0.0:
            raise EstimatorError("round variances must be non-negative")
        self._budgets.append(int(budget))
        self._nums.append(float(num))
        self._dens.append(float(den))
        self._v_num.append(float(var_num))
        self._v_den.append(float(var_den))
        self._v_cov.append(float(cov))

    @property
    def rounds(self) -> int:
        return len(self._budgets)

    @property
    def total_budget(self) -> int:
        return sum(self._budgets)

    def _pooled(self) -> tuple:
        total = self.total_budget
        num = den = v_num = v_den = v_cov = 0.0
        for b, n_r, d_r, vn, vd, vc in zip(
            self._budgets, self._nums, self._dens,
            self._v_num, self._v_den, self._v_cov,
        ):
            w = b / total
            num += w * n_r
            den += w * d_r
            v_num += w * w * vn
            v_den += w * w * vd
            v_cov += w * w * vc
        return num, den, v_num, v_den, v_cov

    @property
    def numerator(self) -> float:
        return self._pooled()[0] if self._budgets else 0.0

    @property
    def denominator(self) -> float:
        return self._pooled()[1] if self._budgets else 0.0

    @property
    def value(self) -> float:
        num, den = self._pooled()[:2] if self._budgets else (0.0, 0.0)
        return num / den if den else float("nan")

    def variance(self) -> float:
        """Delta-method variance of the pooled ratio estimate."""
        if not self._budgets:
            return float("inf")
        num, den, v_num, v_den, v_cov = self._pooled()
        # The per-round components are already variances *of the round
        # estimates* (the /n happened inside each round), so n=1 here.
        return ratio_variance(num, den, v_num, v_den, v_cov, 1)

    def half_width(self) -> float:
        """CI half-width of the pooled estimate at ``confidence``."""
        return self._z * self.variance() ** 0.5

    def converged(self) -> bool:
        """Whether the running CI has reached the target half-width."""
        return self.rounds >= 1 and self.half_width() <= self.target_ci

    def __repr__(self) -> str:  # noqa: D105
        return (
            f"RunningEstimate(rounds={self.rounds}, worlds={self.total_budget}, "
            f"value={self.value:.6g}, half_width={self.half_width():.6g})"
        )


__all__ = [
    "DEFAULT_MIN_WORLDS",
    "DEFAULT_GROWTH",
    "round_budgets",
    "RunningEstimate",
]
