"""The adaptive execution mode: run estimators until a target CI is met.

``Estimator.estimate(..., target_ci=w, confidence=c)`` routes here instead
of spending its whole ``n_samples`` budget up front.  The engine runs the
estimator in geometrically growing *rounds* (:mod:`repro.adaptive.stopping`)
and stops as soon as the pooled running estimate's CI half-width — computed
with the delta method, so conditional (Eq. 22) ratio estimands are handled
correctly — reaches the target, or the ``n_samples`` ceiling is exhausted.
Easy queries cost one pilot round; hard ones spend the full budget.

Two feedback loops close here:

* **Sequential stopping** — each round is an ordinary (unbiased) estimate
  at its own derived seed, traced with a private
  :class:`~repro.telemetry.Tracer`; the round's ledger supplies the
  variance components the stopping rule needs.
* **Neyman allocation** — the pooled per-root-stratum ledger variances are
  activated as a :class:`~repro.adaptive.allocation.NeymanState` around
  every post-pilot round, so estimators built with
  ``allocation="neyman-adaptive"`` size their root strata by
  ``pi_i * sqrt(sigma_i)`` (Eq. 11) instead of ``pi_i``.

Determinism contract: rounds always run through the path-keyed parallel
engine with ``n_workers = max(1, requested)`` (``n_workers=1`` is the
in-process decomposition, no pool), so a fixed seed gives bit-identical
adaptive estimates — including identical stopping decisions, which are pure
functions of the deterministic block stream — for every requested worker
count and kernel backend.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro import metrics as _metrics
from repro.adaptive import allocation as _allocation
from repro.adaptive.stopping import (
    DEFAULT_GROWTH,
    DEFAULT_MIN_WORLDS,
    RunningEstimate,
    round_budgets,
)
from repro.core import diagnostics
from repro.core.result import EstimateResult
from repro.core.variance import DEFAULT_CONFIDENCE
from repro.errors import EstimatorError
from repro.rng import RngLike, root_seed_sequence
from repro.telemetry.spans import RESIDUAL_INDEX, Ledger
from repro.telemetry.tracer import TraceContext, Tracer, env_enabled


def _round_seed(base: np.random.SeedSequence, index: int) -> np.random.SeedSequence:
    """Round ``index``'s root seed: the base spawn key extended by the index.

    Mirrors :class:`repro.rng.StratumRng` path keying, so every round owns
    an independent stream pinned entirely by the caller's seed.
    """
    return np.random.SeedSequence(
        entropy=base.entropy, spawn_key=tuple(base.spawn_key) + (int(index),)
    )


def _root_sigmas(reports: List[Any]) -> Optional[np.ndarray]:
    """Pooled per-root-stratum numerator variances from the rounds so far.

    Leaf ledgers are grouped by the first component of their stratum path
    (the root stratum index) and merged across rounds.  ``None`` when the
    estimator never stratified its root (NMC and friends).  Rounds whose
    root split has a different stratum count (a randomised selection chose
    different edges) are skipped — the override handles misalignment by
    falling back to proportional anyway.
    """
    n_strata = 0
    for report in reports:
        root = report.spans.get(())
        if root is not None and root.pis is not None:
            n_strata = len(root.pis)
            break
    if n_strata == 0:
        return None
    ledgers = [Ledger() for _ in range(n_strata)]
    for report in reports:
        root = report.spans.get(())
        if root is None or root.pis is None or len(root.pis) != n_strata:
            continue
        for span in report.leaf_spans():
            if not span.path or span.path[0] == RESIDUAL_INDEX:
                continue
            if 0 <= span.path[0] < n_strata and span.ledger is not None:
                ledgers[span.path[0]].merge(span.ledger)
    return np.array([ledger.var_num() for ledger in ledgers], dtype=np.float64)


def estimate_adaptive(
    estimator: Any,
    graph: Any,
    query: Any,
    max_worlds: int,
    *,
    target_ci: float,
    confidence: float = DEFAULT_CONFIDENCE,
    rng: RngLike = None,
    min_worlds: int = DEFAULT_MIN_WORLDS,
    growth: float = DEFAULT_GROWTH,
    n_workers: Optional[int] = None,
    tasks_per_worker: int = 4,
    backend: str = "auto",
    min_worlds_per_job: int = 0,
    audit: Optional[bool] = None,
    trace: Any = None,
    source: Any = None,
) -> EstimateResult:
    """Run ``estimator`` in rounds until the running CI meets ``target_ci``.

    Parameters mirror :meth:`repro.core.base.Estimator.estimate`;
    ``max_worlds`` is the ``n_samples`` ceiling the run may spend.  The
    result's ``extras`` carry the adaptive diagnostics
    (:data:`repro.core.diagnostics.ADAPTIVE_EXTRAS`): the target and
    achieved half-width, convergence flag, round count, worlds spent and
    pilot fraction.  ``result.trace`` is the final round's report when
    tracing was requested (``trace=True`` or ``REPRO_TRACE=1``).

    Raises :class:`~repro.errors.EstimatorError` when a conditional query's
    conditioning event was never observed across the whole budget — such a
    run has no estimate, and no uncertainty statement, to report.
    """
    if isinstance(trace, TraceContext):
        raise EstimatorError(
            "adaptive mode runs one tracer per round and cannot adopt an "
            "external Tracer; pass trace=True and read result.trace instead"
        )
    want_trace = env_enabled() if trace is None else bool(trace)
    workers = max(1, int(n_workers or 0))
    base = root_seed_sequence(rng)
    budgets = round_budgets(int(max_worlds), int(min_worlds), float(growth))
    running = RunningEstimate(float(target_ci), float(confidence))
    reports: List[Any] = []
    n_worlds = 0
    rounds_run = 0
    for index, budget in enumerate(budgets):
        sigmas = _root_sigmas(reports) if index > 0 else None
        state = _allocation.NeymanState(sigmas) if sigmas is not None else None
        tracer = Tracer(estimator.name, confidence=float(confidence))
        with _allocation.activate(state):
            result = estimator.estimate(
                graph, query, int(budget), rng=_round_seed(base, index),
                n_workers=workers, tasks_per_worker=tasks_per_worker,
                backend=backend, min_worlds_per_job=min_worlds_per_job,
                audit=audit, trace=tracer, source=source,
            )
        report = result.trace
        reports.append(report)
        running.add_round(
            int(budget), result.numerator, result.denominator,
            report.estimated_variance(),
            report.estimated_variance_den(),
            report.estimated_covariance(),
        )
        n_worlds += result.n_worlds
        rounds_run = index + 1
        if running.converged():
            break
    if query.conditional and running.denominator == 0.0:
        raise EstimatorError(
            f"conditioning event never observed in {n_worlds} worlds; "
            "the conditional estimate (and its CI) is undefined — raise "
            "n_samples or loosen the query"
        )
    registry = _metrics.active()
    if registry is not None:
        registry.observe("repro_adaptive_worlds_to_target", float(n_worlds))
        registry.inc(
            "repro_serving_slo_total",
            labels=("true" if running.converged() else "false",),
        )
    out = EstimateResult.from_pair(
        running.numerator, running.denominator,
        running.total_budget, n_worlds, estimator.name,
        **{
            diagnostics.TARGET_CI: running.target_ci,
            diagnostics.CONFIDENCE: running.confidence,
            diagnostics.HALF_WIDTH: running.half_width(),
            diagnostics.CONVERGED: running.converged(),
            diagnostics.ROUNDS: rounds_run,
            diagnostics.WORLDS_TO_TARGET: n_worlds,
            diagnostics.PILOT_FRACTION: budgets[0] / running.total_budget,
            diagnostics.N_WORKERS: workers,
        },
    )
    if want_trace:
        out.trace = reports[-1]
    return out


__all__ = ["estimate_adaptive"]
