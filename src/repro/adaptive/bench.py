"""Adaptive benchmark: worlds-to-target-CI, NMC vs RSS-I.

The protocol behind the ``adaptive_*`` records of ``BENCH_traversal.json``
(``repro-bench --adaptive``): the paper fixes the world budget ``N`` and
compares variances at that budget; the adaptive engine inverts the
question — *how many worlds does each estimator spend to reach the same
confidence-interval half-width?*  Three estimators answer the same
single-source influence query on the same graph under
:func:`repro.adaptive.estimate_adaptive`:

* ``adaptive_nmc`` — plain Monte Carlo, the cost baseline;
* ``adaptive_rssi`` — RSS-I with BFS edge selection (the paper's
  recommended class-I configuration, Tables V/VII);
* ``adaptive_rssi_neyman`` — the same estimator with
  ``allocation="neyman-adaptive"``, closing the loop from the pilot
  round's telemetry variance ledger back into the allocation.

Every record carries ``worlds_to_target`` (the engine's stopping point),
``target_ci`` / ``pilot_fraction`` / ``half_width`` / ``converged``, and —
on the RSS-I records — ``samples_saved_vs_nmc`` (the NMC-to-RSS-I
worlds ratio; the paper's variance-reduction claim restated in samples).
Before a record is written, each run is repeated at ``n_workers=2`` on the
thread executor and the two results are asserted **bit-identical** — the
sweep doubles as a check of the adaptive determinism contract.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.adaptive.engine import estimate_adaptive
from repro.core import diagnostics
from repro.core.nmc import NMC
from repro.core.result import EstimateResult
from repro.core.rss1 import RSS1
from repro.core.selection import BFSSelection
from repro.errors import ReproError
from repro.graph.uncertain import UncertainGraph
from repro.queries.influence import InfluenceQuery


def _adaptive_estimators() -> List[tuple]:
    return [
        ("adaptive_nmc", NMC()),
        ("adaptive_rssi", RSS1(selection=BFSSelection())),
        (
            "adaptive_rssi_neyman",
            RSS1(selection=BFSSelection(), allocation="neyman-adaptive"),
        ),
    ]


def _identical(a: EstimateResult, b: EstimateResult) -> bool:
    return (
        a.value == b.value
        and a.numerator == b.numerator
        and a.denominator == b.denominator
        and a.extras.get(diagnostics.WORLDS_TO_TARGET)
        == b.extras.get(diagnostics.WORLDS_TO_TARGET)
        and a.extras.get(diagnostics.ROUNDS) == b.extras.get(diagnostics.ROUNDS)
    )


def bench_adaptive(
    records: list,
    graph: UncertainGraph,
    graph_label: str,
    seed: int,
    target_ci: float,
    max_worlds: int,
    confidence: float = 0.95,
    log: Callable[[str], None] = print,
) -> None:
    """Append the worlds-to-target-CI records; assert worker-count parity.

    ``records`` receives one :class:`~repro.bench.harness.BenchRecord` per
    estimator of the protocol.  Raises :class:`ReproError` if any
    estimator's 2-worker rerun differs bit-for-bit from its default run —
    a worlds-to-target number that depends on the executor would be
    meaningless.
    """
    from repro.bench.harness import BenchRecord, _anchor_nodes, _peak_rss_kb

    source, _ = _anchor_nodes(graph)
    query = InfluenceQuery([source])
    nmc_worlds: Optional[int] = None
    for kernel, estimator in _adaptive_estimators():
        t0 = time.perf_counter()
        result = estimate_adaptive(
            estimator, graph, query, max_worlds,
            target_ci=target_ci, confidence=confidence, rng=seed,
        )
        seconds = time.perf_counter() - t0
        rerun = estimate_adaptive(
            estimator, graph, query, max_worlds,
            target_ci=target_ci, confidence=confidence, rng=seed,
            n_workers=2, backend="thread",
        )
        if not _identical(result, rerun):
            raise ReproError(
                f"adaptive determinism failure on {kernel}: 1-worker "
                f"{result.value!r} ({result.extras.get(diagnostics.WORLDS_TO_TARGET)} "
                f"worlds) vs 2-worker {rerun.value!r} "
                f"({rerun.extras.get(diagnostics.WORLDS_TO_TARGET)} worlds)"
            )
        worlds = int(result.extras[diagnostics.WORLDS_TO_TARGET])
        record = BenchRecord(
            kernel, graph_label, worlds, graph.n_edges, seconds,
            worlds / seconds if seconds > 0 else float("inf"),
            peak_rss_kb=_peak_rss_kb(),
            value=float(result.value),
            target_ci=float(target_ci),
            worlds_to_target=worlds,
            pilot_fraction=float(result.extras[diagnostics.PILOT_FRACTION]),
            half_width=float(result.extras[diagnostics.HALF_WIDTH]),
            converged=bool(result.extras[diagnostics.CONVERGED]),
        )
        if kernel == "adaptive_nmc":
            nmc_worlds = worlds
        elif nmc_worlds:
            record.samples_saved_vs_nmc = nmc_worlds / worlds if worlds else None
        records.append(record)
        saved = (
            f" | saves {record.samples_saved_vs_nmc:5.2f}x vs NMC"
            if record.samples_saved_vs_nmc is not None
            else ""
        )
        log(
            f"  {kernel:<22s} {worlds:>8d} worlds to hw<={target_ci:g} "
            f"(reached {record.half_width:.3f}) in {seconds:7.3f}s{saved}"
        )


__all__ = ["bench_adaptive"]
