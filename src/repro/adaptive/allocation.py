"""Variance-aware (Neyman) allocation for adaptive runs.

The paper's stratified estimators allocate proportionally, ``N_i = pi_i N``
(the setting of Theorems 3.2/4.3/5.5), because the per-stratum variances
the optimal Neyman allocation (Eq. 11) needs are unknown up front.  In
adaptive mode they are *not* unknown: the pilot round's telemetry ledger
yields an empirical variance per root stratum, and every later round can
size its strata by ``N_i ~ pi_i * sqrt(sigma_i)`` instead.

The override follows the audit/telemetry module-global pattern: the
adaptive engine activates a :class:`NeymanState` carrying the pooled
pilot sigmas around each main-phase round, and estimators constructed with
``allocation="neyman-adaptive"`` consult it through
:func:`adaptive_allocation` at their split sites.  The override applies
only at the recursion *root* (stratum path ``()``) — deeper nodes have no
pilot statistics keyed to them and fall back to proportional — and only
when the sigma table matches the split's stratum count (a randomised edge
selection can re-stratify differently between rounds; deterministic
selections such as BFS benefit most).

Unbiasedness does not depend on the allocation (Theorem 3.1 holds for any
``N_i >= 1`` per positive-probability stratum), so a misaligned or stale
sigma table can only cost variance, never correctness: the override floors
every positive-weight stratum at one sample, exactly like the paper's
ceiling rule.

The sigmas are *defensive*: raw pilot variances starve exactly the strata
a pilot can least measure — a rare-success stratum with zero pilot hits
has observed variance zero, receives (almost) no main-phase samples, and
its claimed variance stays zero while its true contribution goes
unsampled, which deflates the running CI below coverage.  Each sigma is
therefore floored at :data:`DEFENSIVE_FRACTION`² times the pi-weighted
mean variance before scoring, bounding every stratum's allocation rate at
a fixed fraction of its proportional share (the survey-sampling
"defensive mixture" of optimal and proportional allocation).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.core.allocation import (
    NEYMAN_ADAPTIVE,
    neyman_allocation,
    proportional_allocation,
)

#: Each stratum's Neyman score is floored at this fraction of the score it
#: would get under the pi-weighted average variance, so a zero-variance
#: pilot reading can cut a stratum's sampling rate at most ~2x below
#: proportional instead of starving it entirely.
DEFENSIVE_FRACTION = 0.5


def defensive_sigmas(pis: np.ndarray, sigmas: np.ndarray) -> np.ndarray:
    """Floor pilot variances at a fraction of their pi-weighted mean.

    Returns ``max(sigma_i, DEFENSIVE_FRACTION^2 * sigma_bar)`` with
    ``sigma_bar = sum(pi_i sigma_i) / sum(pi_i)``.  When every variance is
    zero the input is returned unchanged (``neyman_allocation`` already
    falls back to proportional for an all-zero table).
    """
    pis = np.asarray(pis, dtype=np.float64)
    sigmas = np.asarray(sigmas, dtype=np.float64)
    total = pis.sum()
    if total <= 0.0:
        return sigmas
    sigma_bar = float(pis @ sigmas) / total
    if sigma_bar <= 0.0:
        return sigmas
    return np.maximum(sigmas, DEFENSIVE_FRACTION * DEFENSIVE_FRACTION * sigma_bar)


class NeymanState:
    """Per-round sigma table for the root split, plus application counters.

    Attributes
    ----------
    sigmas:
        Per-root-stratum numerator variances pooled over the rounds run so
        far (one entry per stratum of the root split).
    applied / fallbacks:
        How many splits used the Neyman sizing vs fell back to
        proportional (non-root nodes, stratum-count mismatches).
    """

    __slots__ = ("sigmas", "applied", "fallbacks")

    def __init__(self, sigmas: Sequence[float]) -> None:
        self.sigmas = np.asarray(sigmas, dtype=np.float64)
        self.applied = 0
        self.fallbacks = 0


_ACTIVE: Optional[NeymanState] = None


def active() -> Optional[NeymanState]:
    """The active sigma table, or ``None`` outside adaptive main rounds."""
    return _ACTIVE


@contextmanager
def activate(state: Optional[NeymanState]) -> Iterator[Optional[NeymanState]]:
    """Install ``state`` for the duration of a ``with``; ``None`` is a no-op."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = state
    try:
        yield state
    finally:
        _ACTIVE = previous


def adaptive_allocation(pis, n_samples: int, rng) -> np.ndarray:
    """Allocate a split's budget under ``allocation="neyman-adaptive"``.

    At the recursion root with a matching active sigma table this is
    :func:`repro.core.allocation.neyman_allocation` with every
    positive-weight stratum floored at one sample (the unbiasedness
    guarantee proportional ceiling gives).  Everywhere else — deeper
    nodes, no active state (e.g. the pilot round, or a plain
    non-adaptive ``estimate`` call), stratum-count mismatch — it is the
    paper's proportional ceiling, so the estimator stays well-defined
    outside adaptive mode.
    """
    state = _ACTIVE
    path = getattr(rng, "path", None)
    pis = np.asarray(pis, dtype=np.float64)
    if state is None or path is None or tuple(path) != () or state.sigmas.size != pis.size:
        if state is not None:
            state.fallbacks += 1
        return proportional_allocation(pis, n_samples, "ceil")
    out = neyman_allocation(pis, defensive_sigmas(pis, state.sigmas), n_samples).copy()
    out[(pis > 0.0) & (out == 0)] = 1
    state.applied += 1
    return out


__all__ = [
    "NEYMAN_ADAPTIVE",
    "DEFENSIVE_FRACTION",
    "NeymanState",
    "active",
    "activate",
    "adaptive_allocation",
    "defensive_sigmas",
]
