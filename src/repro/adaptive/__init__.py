"""repro.adaptive — sequential stopping + variance-aware allocation.

The adaptive execution mode closes the loop the telemetry variance ledger
opened: instead of spending a fixed ``N`` worlds per query, estimators run
in geometrically growing rounds and stop when the running CI half-width
(delta-method, correct for conditional ratio estimands) reaches a target —
``estimate(..., target_ci=0.01, confidence=0.95)`` — and post-pilot rounds
can size their root strata by ledger variances (Neyman, Eq. 11) via
``allocation="neyman-adaptive"``.

Entry points
------------
* :meth:`repro.core.base.Estimator.estimate` with ``target_ci=`` — routes
  to :func:`estimate_adaptive`.
* :func:`estimate_adaptive` — the engine itself, for explicit control over
  the pilot size and growth factor.
* ``repro.serving`` — per-query ``target_ci=`` SLOs served from cached
  world blocks.
* ``repro-bench --adaptive`` — the worlds-to-target-CI protocol (NMC vs
  RSS-I samples saved).
"""

from repro.adaptive.allocation import (
    NEYMAN_ADAPTIVE,
    NeymanState,
    activate,
    active,
    adaptive_allocation,
)
from repro.adaptive.engine import estimate_adaptive
from repro.adaptive.stopping import (
    DEFAULT_GROWTH,
    DEFAULT_MIN_WORLDS,
    RunningEstimate,
    round_budgets,
)

__all__ = [
    "NEYMAN_ADAPTIVE",
    "NeymanState",
    "activate",
    "active",
    "adaptive_allocation",
    "estimate_adaptive",
    "DEFAULT_GROWTH",
    "DEFAULT_MIN_WORLDS",
    "RunningEstimate",
    "round_budgets",
]
