"""Shared low-level helpers (array tricks, validation)."""

from repro.utils.arrays import gather_ranges, normalize, stable_cumsum
from repro.utils.validation import (
    check_edge_endpoints,
    check_probabilities,
    check_positive_int,
    check_node_index,
)

__all__ = [
    "gather_ranges",
    "normalize",
    "stable_cumsum",
    "check_edge_endpoints",
    "check_probabilities",
    "check_positive_int",
    "check_node_index",
]
