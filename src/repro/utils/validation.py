"""Input validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError, ProbabilityError


def check_probabilities(probs: np.ndarray) -> np.ndarray:
    """Validate and return a float64 array of probabilities in ``[0, 1]``."""
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 1:
        raise ProbabilityError(f"probabilities must be 1-D, got shape {probs.shape}")
    if probs.size and (np.any(~np.isfinite(probs)) or probs.min() < 0.0 or probs.max() > 1.0):
        raise ProbabilityError("edge probabilities must be finite and within [0, 1]")
    return probs


def check_edge_endpoints(src: np.ndarray, dst: np.ndarray, n_nodes: int) -> None:
    """Validate that edge endpoints index into ``range(n_nodes)``."""
    if n_nodes < 0:
        raise GraphError("number of nodes must be non-negative")
    for name, arr in (("src", src), ("dst", dst)):
        if arr.ndim != 1:
            raise GraphError(f"{name} must be 1-D, got shape {arr.shape}")
        if arr.size and (arr.min() < 0 or arr.max() >= n_nodes):
            raise GraphError(f"{name} contains endpoints outside [0, {n_nodes})")
    if src.shape != dst.shape:
        raise GraphError("src and dst must have equal length")


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_node_index(node: int, n_nodes: int, name: str = "node") -> int:
    """Validate that ``node`` is a valid node index and return it as int."""
    if not isinstance(node, (int, np.integer)) or isinstance(node, bool):
        raise TypeError(f"{name} must be an integer, got {type(node).__name__}")
    if not 0 <= node < n_nodes:
        raise ValueError(f"{name} {node} outside valid range [0, {n_nodes})")
    return int(node)


__all__ = [
    "check_probabilities",
    "check_edge_endpoints",
    "check_positive_int",
    "check_node_index",
]
