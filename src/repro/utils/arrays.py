"""Vectorised array utilities used by the traversal and sampling kernels."""

from __future__ import annotations

import numpy as np


def gather_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], ends[i])`` for all ``i``, vectorised.

    This is the core trick that lets breadth-first search expand a whole
    frontier of nodes in one shot: given per-node CSR slice boundaries it
    returns the flat indices of every arc leaving the frontier.

    Parameters
    ----------
    starts, ends:
        Equal-length integer arrays with ``ends >= starts`` elementwise.

    Returns
    -------
    numpy.ndarray
        1-D ``int64`` array of length ``(ends - starts).sum()``.

    Examples
    --------
    >>> gather_ranges(np.array([0, 5]), np.array([2, 8]))
    array([0, 1, 5, 6, 7])
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if starts.shape != ends.shape:
        raise ValueError("starts and ends must have the same shape")
    counts = ends - starts
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError("ends must be >= starts elementwise")
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)


def normalize(weights: np.ndarray) -> np.ndarray:
    """Return ``weights / weights.sum()``; raises on a non-positive total."""
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if not np.isfinite(total) or total <= 0.0:
        raise ValueError(f"cannot normalise weights with total {total}")
    return weights / total


def stable_cumsum(values: np.ndarray) -> np.ndarray:
    """Cumulative sum with the final entry pinned to the exact total.

    ``numpy.cumsum`` accumulates rounding error; for categorical sampling we
    want the last boundary to equal the true total so that a uniform draw can
    never fall off the end of the table.
    """
    values = np.asarray(values, dtype=np.float64)
    out = np.cumsum(values)
    if out.size:
        out[-1] = values.sum()
    return out


__all__ = ["gather_ranges", "normalize", "stable_cumsum"]
